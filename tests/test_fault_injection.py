"""Failure-injection tests: degraded hardware must slow, never corrupt."""

import pytest

from repro.bench import run_bcast
from repro.hardware import Machine, Mode
from repro.hardware.fault_schedule import (
    CounterStall,
    FaultSchedule,
    LinkFlap,
    NodeSlowdown,
    RetryPolicy,
    TreePortFlap,
    WindowFault,
)
from repro.hardware.faults import (
    DegradedMemoryMachine,
    JitterInjector,
    degrade_node_dma,
    degrade_node_memory,
    degrade_torus_channels,
    degrade_tree_port,
    jittered_proc,
)


class TestDegradedDma:
    def test_correct_and_slower(self):
        healthy = run_bcast(
            Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD),
            "torus-direct-put", 256 * 1024,
        )
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        degrade_node_dma(m, node=2, factor=0.25)
        degraded = run_bcast(m, "torus-direct-put", 256 * 1024, verify=True)
        assert degraded.elapsed_us > healthy.elapsed_us

    def test_shaddr_less_sensitive_to_dma_loss(self):
        """The shared-address scheme barely uses the DMA intra-node, so a
        degraded engine hurts it less than the baseline."""
        def slowdown(algorithm):
            healthy = run_bcast(
                Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD),
                algorithm, 512 * 1024,
            ).elapsed_us
            m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
            for node in range(m.nnodes):
                degrade_node_dma(m, node, factor=0.5)
            degraded = run_bcast(m, algorithm, 512 * 1024).elapsed_us
            return degraded / healthy

        assert slowdown("torus-shaddr") < slowdown("torus-direct-put")


class TestStragglerBackpressure:
    def test_one_slow_drain_port_slows_the_whole_tree(self):
        healthy = run_bcast(
            Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD),
            "tree-shaddr", 512 * 1024,
        )
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        degrade_tree_port(m, node=3, factor=0.3, direction="down")
        degraded = run_bcast(m, "tree-shaddr", 512 * 1024, verify=True)
        # Not just node 3: the window backpressures everyone.
        assert degraded.elapsed_us > 1.5 * healthy.elapsed_us

    def test_degraded_up_port_slows_injection(self):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        degrade_tree_port(m, node=1, factor=0.3, direction="up")
        degraded = run_bcast(m, "tree-shaddr", 512 * 1024, verify=True)
        healthy = run_bcast(
            Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD),
            "tree-shaddr", 512 * 1024,
        )
        assert degraded.elapsed_us > healthy.elapsed_us


class TestDegradedLinks:
    def test_degrading_channels_after_first_run_slows_second(self):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        first = run_bcast(m, "torus-shaddr", 512 * 1024)
        degrade_torus_channels(m, node=0, factor=0.4)
        second = run_bcast(m, "torus-shaddr", 512 * 1024, verify=True)
        assert second.elapsed_us > first.elapsed_us


class TestJitter:
    def test_jittered_run_is_correct_and_reproducible(self):
        from repro.collectives.bcast import TorusShaddrBcast
        import numpy as np

        def run_with_jitter(seed):
            m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
            m.set_working_set(40_000 * m.ppn)
            rng = np.random.default_rng(1)
            payload = rng.integers(0, 256, size=40_000, dtype=np.uint8)
            inv = TorusShaddrBcast(m, 0, 40_000, payload=payload)
            jitter = JitterInjector(m, mean_us=5.0, seed=seed)
            barrier = m.make_barrier()

            def rank_loop(rank):
                yield barrier.wait()
                yield from jittered_proc(inv, rank, jitter)

            procs = [
                m.spawn(rank_loop(r), name=f"r{r}")
                for r in range(m.nprocs)
            ]
            m.engine.run_until_processes_finish(procs)
            inv.verify()
            return m.engine.now

        t1 = run_with_jitter(seed=7)
        t2 = run_with_jitter(seed=7)
        t3 = run_with_jitter(seed=8)
        assert t1 == t2  # seeded -> reproducible
        assert t3 != t1  # different noise, different schedule

    def test_zero_mean_jitter_is_noop_delay(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        jitter = JitterInjector(m, mean_us=0.0)

        def p():
            yield from jitter.delay()

        proc = m.spawn(p())
        m.engine.run_until_processes_finish([proc])
        assert m.engine.now == 0.0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            JitterInjector(Machine(torus_dims=(1, 1, 1)), mean_us=-1.0)


class TestValidation:
    def test_bad_factor_rejected(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                degrade_node_dma(m, 0, bad)
            with pytest.raises(ValueError):
                degrade_node_memory(m, 0, bad)


class TestInjectorPersistence:
    """Injected capacity scalings must survive set_working_set."""

    def test_memory_degradation_survives_regime_reinstall(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        m.set_working_set(64 * 1024)
        baseline = m.nodes[1].mem.capacity
        degrade_node_memory(m, node=1, factor=0.5)
        assert m.nodes[1].mem.capacity == pytest.approx(0.5 * baseline)
        # Regime reinstall used to silently reset the capacity; the
        # reapply hook must re-scale it.
        m.set_working_set(64 * 1024)
        assert m.nodes[1].mem.capacity == pytest.approx(0.5 * baseline)
        # Untouched nodes are reinstalled clean.
        assert m.nodes[0].mem.capacity == pytest.approx(baseline)

    def test_degraded_memory_machine_shim_delegates(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        wrapped = DegradedMemoryMachine(m, node=0, factor=0.5)
        assert wrapped.nnodes == m.nnodes
        assert wrapped.machine is m

    def test_removed_hook_stops_reapplying(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        calls = []
        hook = lambda: calls.append(1)  # noqa: E731
        m.add_reapply_hook(hook)
        m.set_working_set(1024)
        m.remove_reapply_hook(hook)
        m.set_working_set(1024)
        assert len(calls) == 1


class TestTorusChannelApi:
    """Public channel enumeration (no reaching into torus._channels)."""

    def test_channels_touching_matches_iteration(self):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        run_bcast(m, "torus-shaddr", 64 * 1024)  # lazily creates channels
        assert len(list(m.torus.iter_channels())) > 0
        touched = m.torus.channels_touching(0)
        assert touched
        expected = [
            ch for key, ch in m.torus.iter_channels()
            if m.torus.channel_touches(key, 0)
        ]
        assert touched == expected

    def test_channel_hook_sees_lazy_creation(self):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        created = []
        m.torus.add_channel_hook(lambda key, ch: created.append(key))
        run_bcast(m, "torus-shaddr", 64 * 1024)
        assert created  # channels are created lazily, during the run
        m.torus.remove_channel_hook(created.append)  # absent hook: no-op


class TestFaultSchedule:
    def test_windowed_link_flap_slows_then_fully_recovers(self):
        def measure(schedule):
            m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
            if schedule is not None:
                schedule.install(m)
            return run_bcast(
                m, "torus-shaddr", 512 * 1024, verify=True
            ).elapsed_us, m

        healthy, _ = measure(None)
        flap = FaultSchedule(
            [LinkFlap(start=0.0, duration=400.0, node=0, factor=0.3)]
        )
        flapped, m = measure(flap)
        assert flapped > healthy
        # After the window closed every channel is back at full capacity:
        # an identical second run on the same machine matches healthy.
        again = run_bcast(m, "torus-shaddr", 512 * 1024)
        assert again.elapsed_us == pytest.approx(healthy, rel=1e-6)

    def test_expired_window_is_skipped_on_install(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        schedule = FaultSchedule(
            [NodeSlowdown(start=0.0, duration=50.0, node=0, factor=0.5)]
        )
        assert schedule.install(m, at=100.0) == 0

    def test_slowdown_and_treeport_apply_and_revert(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        mem0 = m.nodes[0].mem.capacity
        tree0 = m.nodes[1].tree_down.capacity
        FaultSchedule([
            NodeSlowdown(start=10.0, duration=20.0, node=0, factor=0.5),
            TreePortFlap(start=10.0, duration=20.0, node=1, factor=0.25),
        ]).install(m)
        m.engine.run(until=15.0)
        assert m.nodes[0].mem.capacity == pytest.approx(0.5 * mem0)
        assert m.nodes[1].tree_down.capacity == pytest.approx(0.25 * tree0)
        m.engine.run(until=40.0)
        assert m.nodes[0].mem.capacity == pytest.approx(mem0)
        assert m.nodes[1].tree_down.capacity == pytest.approx(tree0)

    def test_fault_windows_land_in_the_trace(self):
        from repro.sim.engine import Engine
        from repro.sim.tracing import chrome_trace

        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD,
                    engine=Engine(trace=True))
        FaultSchedule([
            NodeSlowdown(start=5.0, duration=10.0, node=0, factor=0.5),
            CounterStall(start=0.0, duration=8.0, node=None),
        ]).install(m)
        m.engine.run()
        events = [
            e for e in chrome_trace(m.engine)["traceEvents"]
            if e.get("ph") == "X" and e["name"].startswith("fault.")
        ]
        assert {e["name"] for e in events} == {
            "fault.slowdown.n0", "fault.ctrstall.all",
        }
        # Fault events live on their own trace row.
        assert all(e["tid"] == 1 for e in events)

    def test_window_fault_query_scoping(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        FaultSchedule([
            WindowFault(start=0.0, duration=10.0, node=1, slots_available=2),
        ]).install(m)
        assert m.faults.window_slot_cap(1) == 2
        assert m.faults.window_slot_cap(0) is None
        assert m.faults.window_slot_cap(None) == 2  # unscoped caller
        m.engine.run(until=20.0)
        assert m.faults.window_slot_cap(1) is None  # window over

    def test_counter_stall_defers_wakeups_not_reads(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        FaultSchedule([
            CounterStall(start=0.0, duration=50.0, node=0),
        ]).install(m)
        counter = m.make_counter(name="c", node=0)
        counter.add(1.0)  # published before any watcher: value readable
        woken_at = []

        def watcher():
            yield counter.wait_for(2.0)
            woken_at.append(m.engine.now)

        def already_met():
            # Threshold already met: fires immediately despite the stall.
            yield counter.wait_for(1.0)
            woken_at.append(("immediate", m.engine.now))

        m.spawn(watcher())
        m.spawn(already_met())
        m.engine.call_at(10.0, lambda _v: counter.add(1.0), None)
        m.engine.run()
        assert ("immediate", 0.0) in woken_at
        # The publish at t=10 is deferred to the stall window's end (t=50).
        assert woken_at[-1] == 50.0

    def test_retry_policy_backoff(self):
        policy = RetryPolicy(
            max_attempts=4, base_backoff_us=8.0, backoff_factor=2.0,
            max_backoff_us=20.0,
        )
        assert policy.backoff_us(1) == 8.0
        assert policy.backoff_us(2) == 16.0
        assert policy.backoff_us(3) == 20.0  # capped
        with pytest.raises(ValueError):
            policy.backoff_us(0)
