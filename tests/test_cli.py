"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_dims_parse(self):
        args = build_parser().parse_args(["bcast", "--dims", "4x2x1"])
        assert args.dims == (4, 2, 1)

    def test_bad_dims_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bcast", "--dims", "4x2"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bcast", "--dims", "0x2x2"])

    def test_mode_parse(self):
        args = build_parser().parse_args(["bcast", "--mode", "smp"])
        assert args.mode.name == "SMP"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bcast", "--mode", "octo"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "torus-shaddr" in out
        assert "allreduce-torus-current" in out
        assert "allgather-ring-shaddr" in out

    def test_bcast_verify(self, capsys):
        code = main([
            "bcast", "--size", "32K", "--algorithm", "torus-fifo",
            "--dims", "2x1x1", "--verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "torus-fifo" in out
        assert "verified" in out

    def test_bcast_auto(self, capsys):
        assert main(["bcast", "--size", "256", "--dims", "2x1x1"]) == 0
        assert "tree-shmem" in capsys.readouterr().out

    def test_bcast_profile(self, capsys):
        code = main([
            "bcast", "--size", "64K", "--algorithm", "torus-shaddr",
            "--dims", "2x1x1", "--profile",
        ])
        assert code == 0
        assert "utilization" in capsys.readouterr().out

    def test_bcast_unknown_algorithm_errors(self, capsys):
        assert main([
            "bcast", "--algorithm", "nope", "--dims", "2x1x1",
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_allreduce(self, capsys):
        code = main([
            "allreduce", "--count", "4K", "--dims", "2x1x1", "--verify",
        ])
        assert code == 0
        assert "allreduce-torus-shaddr" in capsys.readouterr().out

    def test_allgather(self, capsys):
        code = main([
            "allgather", "--block", "4K", "--dims", "2x1x1", "--verify",
        ])
        assert code == 0
        assert "allgather-ring-shaddr" in capsys.readouterr().out

    def test_predict_torus(self, capsys):
        assert main(["predict", "--algorithm", "torus-direct-put"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out and "DMA" in out

    def test_predict_tree(self, capsys):
        assert main(["predict", "--algorithm", "tree-shaddr"]) == 0
        assert "tree wire" in capsys.readouterr().out

    def test_predict_unknown_family(self, capsys):
        assert main(["predict", "--algorithm", "ring-thing"]) == 2

    def test_params_dump(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "torus_link_bw" in out
        assert "dma_total_bw" in out

    def test_smp_mode_run(self, capsys):
        code = main([
            "bcast", "--size", "64K", "--algorithm", "torus-direct-put-smp",
            "--dims", "2x1x1", "--mode", "smp",
        ])
        assert code == 0
