"""Unit tests for torus transfer primitives (line broadcast, ptp sends)."""

import pytest

from repro.hardware import Machine, Mode


def make(dims=(4, 1, 1), mode=Mode.SMP):
    m = Machine(torus_dims=dims, mode=mode)
    m.set_working_set(1024)
    return m


def drive(m, transfers_done):
    procs = [m.spawn(g, name=f"t{i}") for i, g in enumerate(transfers_done)]
    m.engine.run_until_processes_finish(procs)


class TestLineBroadcast:
    def test_delivery_order_and_latency(self):
        m = make()
        nbytes = 425 * 10  # 10 µs on the wire
        lt = m.torus.line_broadcast(0, src=0, dim=0, sign=1, nbytes=nbytes)
        times = {}

        def waiter(node):
            yield lt.delivered[node]
            times[node] = m.engine.now

        drive(m, [waiter(n) for n in lt.delivered])
        hop = m.params.torus_hop_latency
        assert times[1] == pytest.approx(10.0 + 1 * hop)
        assert times[2] == pytest.approx(10.0 + 2 * hop)
        assert times[3] == pytest.approx(10.0 + 3 * hop)

    def test_negative_direction_reverses_order(self):
        m = make()
        lt = m.torus.line_broadcast(0, src=0, dim=0, sign=-1, nbytes=425)
        receivers = list(lt.delivered)
        assert receivers == [3, 2, 1]

    def test_rate_limited_by_link_bandwidth(self):
        m = make()
        done = {}

        def sender():
            lt = m.torus.line_broadcast(
                0, src=0, dim=0, sign=1, nbytes=42500
            )
            yield lt.done
            done["t"] = m.engine.now

        drive(m, [sender()])
        assert done["t"] >= 100.0  # 42500 B at 425 B/µs

    def test_same_color_same_line_contend(self):
        m = make()
        done = {}

        def sender(i):
            lt = m.torus.line_broadcast(
                0, src=0, dim=0, sign=1, nbytes=4250, name=f"s{i}"
            )
            yield lt.done
            done[i] = m.engine.now

        drive(m, [sender(0), sender(1)])
        # Two concurrent transfers share the 425 MB/s channel: both finish
        # around 20 µs instead of 10.
        assert min(done.values()) >= 19.0

    def test_different_colors_do_not_contend(self):
        m = make()
        done = {}

        def sender(color):
            lt = m.torus.line_broadcast(
                color, src=0, dim=0, sign=1, nbytes=4250
            )
            yield lt.done
            done[color] = m.engine.now

        drive(m, [sender(0), sender(1)])
        # Edge-disjoint color routes: each rides its own channel.  The DMA
        # budget is shared but far from binding here.
        assert max(done.values()) < 15.0

    def test_degenerate_line_completes_immediately(self):
        m = make(dims=(1, 2, 2))
        lt = m.torus.line_broadcast(0, src=0, dim=0, sign=1, nbytes=1000)
        assert lt.done.triggered
        assert lt.delivered == {}

    def test_invalid_args(self):
        m = make()
        with pytest.raises(ValueError):
            m.torus.line_broadcast(0, 0, dim=5, sign=1, nbytes=10)
        with pytest.raises(ValueError):
            m.torus.line_broadcast(0, 0, dim=0, sign=2, nbytes=10)


class TestPtpSend:
    def test_neighbor_delivery(self):
        m = make()
        done = {}

        def sender():
            ev = m.torus.ptp_send(0, src=0, dst=1, nbytes=4250)
            yield ev
            done["t"] = m.engine.now

        drive(m, [sender()])
        hop = m.params.torus_hop_latency
        assert done["t"] == pytest.approx(10.0 + hop)

    def test_multi_dim_route_accumulates_hops(self):
        m = make(dims=(4, 4, 4))
        src = m.torus.index((0, 0, 0))
        dst = m.torus.index((2, 1, 3))  # 2 + 1 + 1(wrap) hops
        done = {}

        def sender():
            ev = m.torus.ptp_send(0, src=src, dst=dst, nbytes=425)
            yield ev
            done["t"] = m.engine.now

        drive(m, [sender()])
        hop = m.params.torus_hop_latency
        assert done["t"] == pytest.approx(1.0 + 4 * hop)

    def test_self_send_is_free(self):
        m = make()
        ev = m.torus.ptp_send(0, src=2, dst=2, nbytes=100)
        assert ev.triggered

    def test_pipelined_ring_segments_do_not_contend(self):
        """Concurrent neighbour sends along one line use distinct links."""
        m = make(dims=(4, 1, 1))
        done = {}

        def sender(i):
            ev = m.torus.ptp_send(0, src=i, dst=(i + 1) % 4, nbytes=4250)
            yield ev
            done[i] = m.engine.now

        drive(m, [sender(i) for i in range(4)])
        # All four sends proceed at full link rate (~10 µs + 1 hop), not 4x.
        assert max(done.values()) < 12.0
