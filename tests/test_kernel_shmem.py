"""Unit tests for simulated shared-memory structures (the DES twins)."""

import numpy as np
import pytest

from repro.hardware import Machine, Mode
from repro.kernel.shmem import SharedSegment, SimBcastFifo, SimPtPFifo


def machine():
    m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
    m.set_working_set(4096)
    return m


class TestSharedSegment:
    def test_holds_real_bytes(self):
        m = machine()
        seg = SharedSegment(m, 64)
        seg.buffer[:4] = np.frombuffer(b"abcd", dtype=np.uint8)
        assert bytes(seg.buffer[:4]) == b"abcd"

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SharedSegment(machine(), 0)


class TestSimPtPFifo:
    def test_order_and_content(self):
        m = machine()
        fifo = SimPtPFifo(m, slots=2, slot_bytes=64)
        node = m.nodes[0]
        got = []

        def producer():
            for i in range(5):
                payload = np.full(8, i, dtype=np.uint8)
                yield from fifo.enqueue(node, payload, meta=i)

        def consumer():
            for _ in range(5):
                payload, meta = yield from fifo.dequeue(node)
                got.append((bytes(payload), meta, m.engine.now))

        p1 = m.spawn(producer())
        p2 = m.spawn(consumer())
        m.engine.run_until_processes_finish([p1, p2])
        assert [meta for _b, meta, _t in got] == list(range(5))
        assert got[0][0] == b"\x00" * 8

    def test_backpressure_blocks_producer(self):
        m = machine()
        fifo = SimPtPFifo(m, slots=1, slot_bytes=16)
        node = m.nodes[0]
        timeline = {}

        def producer():
            yield from fifo.enqueue(node, np.zeros(4, dtype=np.uint8))
            timeline["first"] = m.engine.now
            yield from fifo.enqueue(node, np.zeros(4, dtype=np.uint8))
            timeline["second"] = m.engine.now

        def consumer():
            yield m.engine.timeout(100.0)
            yield from fifo.dequeue(node)
            yield from fifo.dequeue(node)

        p1 = m.spawn(producer())
        p2 = m.spawn(consumer())
        m.engine.run_until_processes_finish([p1, p2])
        # The second enqueue had to wait for the consumer's first dequeue.
        assert timeline["second"] > 100.0

    def test_oversized_rejected(self):
        m = machine()
        fifo = SimPtPFifo(m, slots=1, slot_bytes=4)

        def p():
            yield from fifo.enqueue(m.nodes[0], np.zeros(8, dtype=np.uint8))

        m.spawn(p())
        with pytest.raises(Exception):
            m.engine.run()


class TestSimBcastFifo:
    def test_all_consumers_see_all_messages(self):
        m = machine()
        fifo = SimBcastFifo(m, slots=2, slot_bytes=64, consumers=3)
        node = m.nodes[0]
        got = [[] for _ in range(3)]

        def producer():
            for i in range(6):
                payload = np.full(16, i, dtype=np.uint8)
                yield from fifo.enqueue(node, payload, meta=("conn", i))

        def consumer(idx):
            for seq in range(6):
                payload, meta = yield from fifo.dequeue(node, seq)
                got[idx].append((bytes(payload), meta))

        procs = [m.spawn(producer())] + [
            m.spawn(consumer(i)) for i in range(3)
        ]
        m.engine.run_until_processes_finish(procs)
        for i in range(3):
            assert [meta for _b, meta in got[i]] == [
                ("conn", k) for k in range(6)
            ]
            assert got[i][2][0] == bytes([2]) * 16

    def test_retirement_requires_all_consumers(self):
        m = machine()
        fifo = SimBcastFifo(m, slots=1, slot_bytes=16, consumers=2)
        node = m.nodes[0]
        timeline = {}

        def producer():
            yield from fifo.enqueue(node, np.zeros(4, dtype=np.uint8))
            yield from fifo.enqueue(node, np.ones(4, dtype=np.uint8))
            timeline["second_enqueued"] = m.engine.now

        def fast_consumer():
            yield from fifo.dequeue(node, 0)
            timeline["fast_read"] = m.engine.now
            yield from fifo.dequeue(node, 1)

        def slow_consumer():
            yield m.engine.timeout(500.0)
            yield from fifo.dequeue(node, 0)
            yield from fifo.dequeue(node, 1)

        procs = [
            m.spawn(producer()),
            m.spawn(fast_consumer()),
            m.spawn(slow_consumer()),
        ]
        m.engine.run_until_processes_finish(procs)
        # The slot is only retired once the slow consumer read message 0.
        assert timeline["second_enqueued"] > 500.0
        assert fifo.retired == 2

    def test_costs_accrue_simulated_time(self):
        m = machine()
        fifo = SimBcastFifo(m, slots=4, slot_bytes=4096, consumers=1)
        node = m.nodes[0]

        def producer():
            yield from fifo.enqueue(node, np.zeros(4096, dtype=np.uint8))

        def consumer():
            yield from fifo.dequeue(node, 0)

        procs = [m.spawn(producer()), m.spawn(consumer())]
        m.engine.run_until_processes_finish(procs)
        # At minimum: two staging copies of 4096 B at the FIFO copy rate.
        min_time = 2 * 4096 / m.params.fifo_copy_bw_l3
        assert m.engine.now >= min_time

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SimBcastFifo(machine(), slots=0, slot_bytes=1, consumers=1)
        with pytest.raises(ValueError):
            SimBcastFifo(machine(), slots=1, slot_bytes=1, consumers=0)
