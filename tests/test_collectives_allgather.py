"""Integration tests for the future-work allgather extension."""

import pytest

from repro.bench import run_allgather
from repro.collectives.registry import (
    allgather_algorithm,
    list_allgather_algorithms,
)
from repro.hardware import Machine, Mode

ALGOS = ["allgather-ring-current", "allgather-ring-shaddr"]


class TestAllgatherCorrectness:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_every_rank_assembles_all_blocks(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        result = run_allgather(
            m, algorithm, block_bytes=4096, iters=1, verify=True
        )
        assert result.nbytes == 4096 * m.nprocs

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_odd_block_size(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        run_allgather(m, algorithm, block_bytes=3333, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_single_node(self, algorithm):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        run_allgather(m, algorithm, block_bytes=2048, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_asymmetric_torus(self, algorithm):
        m = Machine(torus_dims=(3, 2, 1), mode=Mode.QUAD)
        run_allgather(m, algorithm, block_bytes=1024, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_smp_mode(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.SMP)
        run_allgather(m, algorithm, block_bytes=4096, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_zero_block(self, algorithm):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        result = run_allgather(m, algorithm, block_bytes=0, iters=1)
        assert result.elapsed_us >= 0

    def test_multiple_iterations(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        result = run_allgather(
            m, "allgather-ring-shaddr", block_bytes=2048, iters=3, verify=True
        )
        assert len(result.iterations_us) == 3

    def test_registry(self):
        assert list_allgather_algorithms() == sorted(ALGOS)
        with pytest.raises(KeyError):
            allgather_algorithm("nope")


class TestAllgatherShape:
    def test_shaddr_beats_current(self):
        results = {}
        for algorithm in ALGOS:
            m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            results[algorithm] = run_allgather(
                m, algorithm, block_bytes=64 * 1024
            ).bandwidth_mbs
        assert (
            results["allgather-ring-shaddr"]
            > results["allgather-ring-current"]
        )
