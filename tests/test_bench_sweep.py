"""Tests for the JSON-config sweep runner and its CLI command."""

import json

import pytest

from repro.bench.sweep import SweepResult, run_sweep, run_sweep_file
from repro.cli import main


def small_config(**overrides):
    config = {
        "name": "test-sweep",
        "kind": "bcast",
        "algorithms": ["torus-shaddr", "torus-direct-put"],
        "sizes": ["16K", "64K"],
        "machine": {"dims": [2, 1, 1], "mode": "quad"},
        "iters": 1,
    }
    config.update(overrides)
    return config


class TestRunSweep:
    def test_grid_shape(self):
        result = run_sweep(small_config())
        assert result.x_values == [16 * 1024, 64 * 1024]
        assert set(result.bandwidth) == {
            "torus-shaddr", "torus-direct-put"
        }
        for values in result.bandwidth.values():
            assert len(values) == 2
            assert all(v > 0 for v in values)

    def test_allreduce_kind_uses_counts(self):
        result = run_sweep(
            small_config(
                kind="allreduce",
                algorithms=["allreduce-torus-shaddr"],
                sizes=["4K", "16K"],
            )
        )
        assert result.x_values == [4096, 16384]
        assert "16384" in result.table()

    def test_mesh_machine(self):
        result = run_sweep(
            small_config(machine={"dims": [2, 2, 1], "mode": "quad",
                                  "wrap": False})
        )
        assert result.bandwidth["torus-shaddr"][0] > 0

    def test_table_renders(self):
        result = run_sweep(small_config())
        text = result.table()
        assert "torus-shaddr" in text and "16K" in text
        bandwidth_table = result.table("bandwidth")
        elapsed_table = result.table("elapsed_us")
        assert bandwidth_table != elapsed_table

    def test_json_roundtrip(self):
        result = run_sweep(small_config())
        clone = SweepResult.from_json(result.to_json())
        assert clone.bandwidth == result.bandwidth
        assert clone.x_values == result.x_values

    def test_missing_keys_rejected(self):
        with pytest.raises(KeyError):
            run_sweep({"kind": "bcast"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            run_sweep(small_config(kind="alltoall"))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(small_config(sizes=[]))


class TestSweepCli:
    def test_cli_runs_and_saves(self, tmp_path, capsys):
        config_path = tmp_path / "sweep.json"
        config_path.write_text(json.dumps(small_config(sizes=["8K"])))
        out_path = tmp_path / "out.json"
        code = main(["sweep", str(config_path), "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "test-sweep" in out
        saved = json.loads(out_path.read_text())
        assert saved["kind"] == "bcast"

    def test_cli_file_roundtrip_helper(self, tmp_path):
        config_path = tmp_path / "sweep.json"
        config_path.write_text(json.dumps(small_config(sizes=["8K"])))
        result = run_sweep_file(str(config_path))
        assert result.x_values == [8192]

    def test_pingpong_cli(self, capsys):
        code = main(["pingpong", "--size", "256", "--dims", "4x1x1"])
        assert code == 0
        assert "pingpong[eager]" in capsys.readouterr().out
