"""The deterministic parallel sweep executor (``repro.bench.parallel``).

Three guarantees under test:

* **byte-identical merge** — fanning a sweep across worker processes
  returns element-wise identical results to the serial run (same floats,
  same order), for both collective networks;
* **crash isolation** — a point whose worker raises fails only that
  point: the pool survives, the other points complete, and the exception
  surfaces with the worker's traceback attached;
* **replayable campaigns** — a seeded chaos campaign run at ``jobs=2``
  reproduces the serial campaign (and the committed
  ``BENCH_robustness.json``) record-for-record.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.bench.chaos import chaos_campaign
from repro.bench.parallel import (
    ParallelExecutor,
    PointFailure,
    WorkerPointError,
    chunk_specs,
    execute_points,
    resolve_jobs,
    resolve_timeout,
    run_point,
    warm_machine,
)
from repro.bench.sweep import run_sweep
from repro.hardware.machine import Machine, Mode
from repro.util.buffers import same_bytes

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


# -- module-level tasks (workers import them by qualified name) ----------

def _double_or_explode(spec):
    if spec["x"] == 13:
        raise ValueError("unlucky point 13")
    return spec["x"] * 2


def _double_or_hang(spec):
    if spec["x"] == 13:
        time.sleep(3600)
    return spec["x"] * 2


# -- job resolution ------------------------------------------------------

class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) >= 1

    def test_bad_env_var_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)


# -- warm-machine reuse --------------------------------------------------

class TestWarmMachine:
    def test_reused_machine_is_bit_identical_to_fresh(self):
        from repro.bench.harness import run_collective

        fresh = run_collective(
            Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD),
            "bcast", "tree-shaddr", 16384, iters=3,
        )
        # Prime the cache with an unrelated point, then reuse.
        warm = warm_machine((2, 2, 2))
        run_collective(warm, "bcast", "torus-shaddr", 4096, iters=2)
        reused = run_collective(
            warm_machine((2, 2, 2)), "bcast", "tree-shaddr", 16384, iters=3,
        )
        assert reused.elapsed_us == fresh.elapsed_us
        assert reused.iterations_us == fresh.iterations_us

    def test_cache_is_keyed_on_geometry(self):
        a = warm_machine((2, 2, 1))
        b = warm_machine((2, 2, 1), mode="SMP")
        c = warm_machine((2, 2, 1))
        assert a is not b
        assert a is c


# -- byte-identical parallel sweeps --------------------------------------

class TestParallelSweepEquivalence:
    def test_tree_bcast_sweep_matches_serial(self):
        config = {
            "name": "tree-equiv", "kind": "bcast",
            "algorithms": ["tree-shaddr", "tree-dma-fifo"],
            "sizes": ["4K", "16K"],
            "machine": {"dims": [2, 2, 2]}, "iters": 2,
        }
        serial = run_sweep(config, jobs=1)
        parallel = run_sweep(config, jobs=2)
        assert parallel.elapsed_us == serial.elapsed_us
        assert parallel.bandwidth == serial.bandwidth
        assert parallel.x_values == serial.x_values

    def test_torus_allreduce_sweep_matches_serial(self):
        config = {
            "name": "torus-equiv", "kind": "allreduce",
            "algorithms": ["allreduce-torus-shaddr"],
            "sizes": ["1K", "4K"],
            "machine": {"dims": [2, 2, 2]}, "iters": 1,
        }
        serial = run_sweep(config, jobs=1)
        parallel = run_sweep(config, jobs=2)
        assert parallel.elapsed_us == serial.elapsed_us
        assert parallel.bandwidth == serial.bandwidth

    def test_spawn_start_method_point(self):
        # The spawn-safety rule holds end to end: a spec crosses into a
        # spawn-started interpreter and the result comes back intact.
        spec = {"family": "bcast", "algorithm": "tree-shaddr", "x": 4096,
                "dims": (2, 2, 1), "mode": "QUAD", "iters": 1}
        serial = run_point({**spec, "fresh_machine": True})
        with ParallelExecutor(2, start_method="spawn") as executor:
            (remote,) = executor.map(run_point, [spec])
        assert remote.elapsed_us == serial.elapsed_us
        assert remote.algorithm == serial.algorithm


# -- crash isolation -----------------------------------------------------

class TestCrashIsolation:
    def test_failed_point_surfaces_traceback_and_pool_survives(self):
        with ParallelExecutor(2) as executor:
            specs = [{"x": x} for x in (1, 13, 3, 4)]
            with pytest.raises(WorkerPointError) as excinfo:
                executor.map(_double_or_explode, specs)
            # The worker's formatted traceback is carried along, and the
            # serial re-run's real exception is the cause.
            assert "unlucky point 13" in str(excinfo.value)
            assert isinstance(excinfo.value.__cause__, ValueError)
            # Same pool, next map: workers are still alive.
            results = executor.map(
                _double_or_explode, [{"x": x} for x in (5, 6, 7, 8)]
            )
            assert results == [10, 12, 14, 16]

    def test_on_error_return_keeps_surviving_points(self):
        with ParallelExecutor(2) as executor:
            results = executor.map(
                _double_or_explode,
                [{"x": x} for x in (1, 13, 3)],
                on_error="return",
            )
        assert results[0] == 2
        assert results[2] == 6
        assert isinstance(results[1], PointFailure)
        assert results[1].index == 1
        assert "unlucky point 13" in results[1].traceback
        assert not results[1]  # falsy, so filter(None, ...) drops it
        assert list(filter(None, results)) == [2, 6]

    def test_serial_mode_raises_plainly(self):
        with pytest.raises(ValueError, match="unlucky point 13"):
            execute_points(
                [{"x": 13}, {"x": 1}], jobs=1, task=_double_or_explode
            )

    def test_worker_traceback_and_spec_are_preserved(self):
        with ParallelExecutor(2) as executor:
            specs = [{"x": x} for x in (1, 13)]
            failures = executor.map(
                _double_or_explode, specs, on_error="return"
            )
            assert failures[1].spec == {"x": 13}
            assert "_double_or_explode" in failures[1].traceback
            with pytest.raises(WorkerPointError) as excinfo:
                executor.map(_double_or_explode, specs)
        assert excinfo.value.index == 1
        assert "unlucky point 13" in excinfo.value.worker_traceback
        assert "_double_or_explode" in excinfo.value.worker_traceback

    def test_serial_failure_preserves_spec(self):
        (failure,) = execute_points(
            [{"x": 13}], jobs=1, task=_double_or_explode, on_error="return"
        )
        assert isinstance(failure, PointFailure)
        assert failure.spec == {"x": 13}
        assert "unlucky point 13" in failure.traceback


# -- hung-worker chunk timeout -------------------------------------------

class TestChunkTimeout:
    def test_hung_point_fails_instead_of_hanging(self):
        with ParallelExecutor(2, chunk_size=1) as executor:
            results = executor.map(
                _double_or_hang, [{"x": x} for x in (1, 13, 3)],
                on_error="return", timeout_s=2.0,
            )
        assert results[0] == 2
        assert results[2] == 6
        assert isinstance(results[1], PointFailure)
        assert "PointTimeout" in results[1].traceback
        assert results[1].spec == {"x": 13}

    def test_hung_point_raises_without_serial_rerun(self):
        # A serial re-run of a hung point would hang this process too —
        # the timeout must surface as WorkerPointError directly.
        start = time.monotonic()
        with ParallelExecutor(2, chunk_size=1, timeout_s=2.0) as executor:
            with pytest.raises(WorkerPointError) as excinfo:
                executor.map(_double_or_hang, [{"x": 13}, {"x": 1}])
        assert time.monotonic() - start < 60.0
        assert "timed out" in str(excinfo.value)
        assert "PointTimeout" in excinfo.value.worker_traceback

    def test_executor_survives_a_timeout(self):
        with ParallelExecutor(2, chunk_size=1) as executor:
            executor.map(
                _double_or_hang, [{"x": 13}, {"x": 1}], on_error="return",
                timeout_s=1.0,
            )
            # The wedged pool was put down; a fresh one serves the next map.
            assert executor.map(_double_or_hang, [{"x": 2}, {"x": 3}]) \
                == [4, 6]

    def test_resolve_timeout_env_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_TIMEOUT_S", raising=False)
        assert resolve_timeout(None) is None
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT_S", "2.5")
        assert resolve_timeout(None) == 2.5
        assert resolve_timeout(7.0) == 7.0
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT_S", "soon")
        with pytest.raises(ValueError, match="REPRO_CHUNK_TIMEOUT_S"):
            resolve_timeout(None)
        with pytest.raises(ValueError, match="positive"):
            resolve_timeout(-1.0)


# -- shared chunking helper ----------------------------------------------

class TestChunkSpecs:
    def test_chunks_cover_all_indices_in_order(self):
        specs = [{"x": x} for x in range(10)]
        chunks = chunk_specs(specs, jobs=2)
        flat = [pair for chunk in chunks for pair in chunk]
        assert flat == list(enumerate(specs))
        assert len(chunks) >= 8  # at least 4 * jobs chunks

    def test_explicit_chunk_size(self):
        chunks = chunk_specs([{"x": x} for x in range(5)], chunk_size=2)
        assert [len(c) for c in chunks] == [2, 2, 1]
        with pytest.raises(ValueError, match="chunk_size"):
            chunk_specs([{}], chunk_size=0)


# -- parallel chaos campaigns --------------------------------------------

class TestParallelChaos:
    def test_jobs2_campaign_reproduces_serial_and_committed_summary(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_robustness.json").read_text()
        )
        meta = committed["meta"]
        kwargs = dict(
            seed=meta["seed"], runs=meta["runs_per_algorithm"],
            dims=tuple(meta["dims"]), deadline_us=meta["deadline_us"],
            out_path=None, verbose=False,
        )
        serial = chaos_campaign(jobs=1, **kwargs)
        parallel = chaos_campaign(jobs=2, **kwargs)
        assert parallel["summary"] == serial["summary"]
        assert parallel["runs"] == serial["runs"]
        assert parallel["ladder"] == serial["ladder"]
        assert parallel["recovery_us"] == serial["recovery_us"]
        # ... and both reproduce the committed robustness report.
        assert parallel["summary"] == committed["summary"]


# -- zero-copy comparison helper -----------------------------------------

class TestSameBytes:
    def test_equal_and_unequal_byte_buffers(self):
        a = np.arange(256, dtype=np.uint8)
        assert same_bytes(a, a.copy())
        b = a.copy()
        b[128] ^= 0xFF
        assert not same_bytes(a, b)

    def test_identity_short_circuits(self):
        a = np.zeros(8, dtype=np.float64)
        assert same_bytes(a, a)

    def test_cross_dtype_byte_view(self):
        a = np.array([1.5, -2.0])
        assert same_bytes(a, a.view(np.uint8))
        assert not same_bytes(a, np.array([1.5, 2.0]))

    def test_non_contiguous_fallback(self):
        base = np.arange(16, dtype=np.uint8)
        assert same_bytes(base[::2], np.ascontiguousarray(base[::2]))
        assert not same_bytes(base[::2], base[1::2])

    def test_length_mismatch(self):
        assert not same_bytes(
            np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8)
        )


class TestCopyOnWriteRootBuffer:
    def test_verifying_run_leaves_caller_payload_untouched(self):
        from repro.bench.harness import build_payload, run_collective

        machine = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        payload = build_payload(machine, "bcast", 8192, seed=99)
        pristine = payload.copy()
        run_collective(
            machine, "bcast", "tree-shaddr", 8192,
            verify=True, payload=payload,
        )
        assert same_bytes(payload, pristine)

    def test_payload_without_verify_is_rejected(self):
        from repro.bench.harness import run_collective

        machine = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        with pytest.raises(ValueError, match="verify"):
            run_collective(
                machine, "bcast", "tree-shaddr", 64,
                payload=np.zeros(64, dtype=np.uint8),
            )
