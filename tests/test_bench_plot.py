"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plot import render_chart
from repro.bench.report import Series


def simple_chart(**kwargs):
    xs = [1024, 2048, 4096]
    s = Series("demo", [10.0, 20.0, 15.0])
    return render_chart(xs, [s], **kwargs)


class TestRenderChart:
    def test_contains_legend_and_axes(self):
        text = simple_chart()
        assert "o demo" in text
        assert "1K" in text and "4K" in text
        assert "MB/s" in text

    def test_custom_y_label(self):
        assert "latency" in simple_chart(y_label="latency (us)")

    def test_multiple_series_distinct_glyphs(self):
        xs = [1024, 4096]
        a = Series("A", [5.0, 10.0])
        b = Series("B", [1.0, 2.0])
        text = render_chart(xs, [a, b])
        assert "o A" in text and "x B" in text
        assert "o" in text and "x" in text

    def test_count_x_format(self):
        xs = [16384, 524288]
        text = render_chart(
            xs, [Series("n", [1.0, 2.0])], x_format="count"
        )
        assert "16384" in text

    def test_peak_on_top_row(self):
        """The maximum value lands in the upper region of the grid."""
        xs = [1024, 2048, 4096, 8192]
        s = Series("peak", [1.0, 100.0, 1.0, 1.0])
        lines = render_chart(xs, [s], height=10).splitlines()
        # The first grid row carries the y-max label and, near the peak
        # column, the glyph within the top two rows.
        top_two = "".join(lines[0:2])
        assert "o" in top_two

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_chart([1, 2], [Series("s", [1.0])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_chart([], [])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            simple_chart(width=4)

    def test_linear_x(self):
        xs = [0, 50, 100]
        text = render_chart(
            xs, [Series("lin", [1.0, 2.0, 3.0])],
            log_x=False, x_format="count",
        )
        assert "100" in text
