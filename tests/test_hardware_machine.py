"""Unit tests for Machine, Node, and rank mapping."""

import pytest

from repro.hardware import BGPParams, Machine, Mode


class TestRankMapping:
    def test_quad_mapping(self):
        m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        assert m.nprocs == 32
        assert m.rank_to_node(0) == 0
        assert m.rank_to_node(7) == 1
        assert m.rank_to_local(7) == 3
        assert m.node_ranks(1) == [4, 5, 6, 7]

    def test_smp_mapping(self):
        m = Machine(torus_dims=(2, 2, 2), mode=Mode.SMP)
        assert m.nprocs == 8
        assert m.rank_to_node(5) == 5
        assert m.rank_to_local(5) == 0

    def test_dual_mapping(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.DUAL)
        assert m.nprocs == 4
        assert m.node_ranks(1) == [2, 3]

    def test_rank_out_of_range(self):
        m = Machine(torus_dims=(2, 2, 2), mode=Mode.SMP)
        with pytest.raises(ValueError):
            m.rank_to_node(8)
        with pytest.raises(ValueError):
            m.rank_to_node(-1)

    def test_node_index_out_of_range(self):
        m = Machine(torus_dims=(2, 2, 2), mode=Mode.SMP)
        with pytest.raises(ValueError):
            m.node_ranks(8)

    def test_mode_needs_enough_cores(self):
        params = BGPParams(cores_per_node=2)
        with pytest.raises(ValueError):
            Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD, params=params)


class TestWorkingSet:
    def test_regime_installed_on_all_nodes(self):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        regime = m.set_working_set(32 * 1024 * 1024)
        assert regime.raw_capacity == m.params.mem_bw_dram
        for node in m.nodes:
            assert node.mem.capacity == regime.raw_capacity
            assert node.regime is regime


class TestTorusTopology:
    def test_coords_index_roundtrip(self):
        m = Machine(torus_dims=(4, 3, 2), mode=Mode.SMP)
        for i in range(m.nnodes):
            assert m.torus.index(m.torus.coords(i)) == i

    def test_neighbor_wraps(self):
        m = Machine(torus_dims=(4, 3, 2), mode=Mode.SMP)
        t = m.torus
        n = t.index((3, 0, 0))
        assert t.neighbor(n, 0, 1) == t.index((0, 0, 0))
        assert t.neighbor(n, 0, -1) == t.index((2, 0, 0))

    def test_line_nodes_excludes_source(self):
        m = Machine(torus_dims=(4, 1, 1), mode=Mode.SMP)
        t = m.torus
        line = t.line_nodes(1, 0, 1)
        assert line == [t.index((2, 0, 0)), t.index((3, 0, 0)),
                        t.index((0, 0, 0))]

    def test_hop_distance_uses_wraparound(self):
        m = Machine(torus_dims=(8, 1, 1), mode=Mode.SMP)
        t = m.torus
        assert t.hop_distance(t.index((0, 0, 0)), t.index((7, 0, 0))) == 1
        assert t.hop_distance(t.index((0, 0, 0)), t.index((4, 0, 0))) == 4

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Machine(torus_dims=(0, 2, 2), mode=Mode.SMP)


class TestTreeNetwork:
    def test_depth_grows_logarithmically(self):
        small = Machine(torus_dims=(2, 2, 1), mode=Mode.SMP)
        large = Machine(torus_dims=(8, 8, 4), mode=Mode.SMP)
        assert small.tree.depth < large.tree.depth
        assert large.tree.depth == 8  # ceil(log2(256))

    def test_traversal_latency_positive(self):
        m = Machine(torus_dims=(4, 4, 4), mode=Mode.SMP)
        assert m.tree.traversal_latency > 0


class TestNodeOps:
    def test_core_copy_rate(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        m.set_working_set(1024)
        node = m.nodes[0]
        done = []

        def p():
            yield from node.core_copy(m.params.core_copy_bw_l3 * 10)
            done.append(m.engine.now)

        m.spawn(p())
        m.run()
        assert done == [pytest.approx(10.0)]

    def test_two_core_copies_split_memory(self):
        # Memory raw capacity binds before two cores' individual caps.
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        m.set_working_set(1024)
        node = m.nodes[0]
        raw = m.params.mem_bw_l3
        per_core = m.params.core_copy_bw_l3
        payload = 10000.0
        done = []

        def p(i):
            yield from node.core_copy(payload)
            done.append(m.engine.now)

        for i in range(4):
            m.spawn(p(i))
        m.run()
        # Four copies, each weight 2: fair share = raw/8 per flow, below
        # the per-core cap in the default calibration.
        expected_rate = min(per_core, raw / 8.0)
        assert done[-1] == pytest.approx(payload / expected_rate)

    def test_core_reduce_requires_two_buffers(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        node = m.nodes[0]
        with pytest.raises(ValueError):
            list(node.core_reduce(100, 1))

    def test_dma_counter_polling(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        dma = m.dma[0]
        counter = dma.make_counter()
        log = []

        def poller():
            yield from counter.wait_for(100)
            log.append(m.engine.now)

        def producer():
            yield m.engine.timeout(5.0)
            counter.add(100)

        m.spawn(poller())
        m.spawn(producer())
        m.run()
        assert log == [pytest.approx(5.0 + m.params.dma_counter_poll)]
