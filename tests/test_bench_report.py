"""Unit tests for the benchmark reporting helpers and harness plumbing."""

import pytest

from repro.bench import Series, format_table, run_bcast, speedup
from repro.bench.experiments import ExperimentResult
from repro.hardware import Machine, Mode


class TestSeriesAndTable:
    def test_table_layout(self):
        series = [Series("A", [1.0, 2.0]), Series("B", [3.5, 4.25])]
        text = format_table("size", [1024, 2048], series)
        lines = text.splitlines()
        assert lines[0].split() == ["size", "A", "B"]
        assert lines[2].split() == ["1K", "1.0", "3.5"]
        assert lines[3].split() == ["2K", "2.0", "4.2"]

    def test_count_format(self):
        series = [Series("A", [1.0])]
        text = format_table("n", [16384], series, x_format="count")
        assert "16384" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table("x", [1, 2], [Series("A", [1.0])])

    def test_speedup(self):
        assert speedup([2.0, 9.0], [1.0, 3.0]) == [2.0, 3.0]
        with pytest.raises(ValueError):
            speedup([1.0], [1.0, 2.0])

    def test_series_add(self):
        s = Series("x")
        s.add(1.0)
        s.add(2.0)
        assert s.values == [1.0, 2.0]


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            "demo", "size", [1024], [Series("A", [5.0])], {"m": 1.5}
        )

    def test_series_lookup(self):
        r = self._result()
        assert r.series_by_label("A").values == [5.0]
        with pytest.raises(KeyError):
            r.series_by_label("B")

    def test_table_renders(self):
        assert "demo" not in self._result().table()  # table has no title
        assert "1K" in self._result().table()


class TestHarness:
    def test_determinism(self):
        """Identical configurations produce identical simulated times."""
        results = []
        for _ in range(2):
            m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
            results.append(
                run_bcast(m, "torus-shaddr", nbytes=100_000, iters=2)
            )
        assert results[0].iterations_us == results[1].iterations_us

    def test_iterations_recorded(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        r = run_bcast(m, "torus-fifo", nbytes=10_000, iters=3)
        assert len(r.iterations_us) == 3
        assert r.elapsed_us == pytest.approx(
            sum(r.iterations_us) / 3
        )

    def test_result_str_contains_algorithm(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        r = run_bcast(m, "torus-shaddr", nbytes=1000)
        assert "torus-shaddr" in str(r)
        assert r.bandwidth_mbs > 0

    def test_machine_reuse_across_measurements(self):
        """One machine object supports repeated independent measurements."""
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        r1 = run_bcast(m, "torus-shaddr", nbytes=50_000)
        r2 = run_bcast(m, "torus-shaddr", nbytes=50_000)
        assert r1.elapsed_us == pytest.approx(r2.elapsed_us, rel=1e-9)
