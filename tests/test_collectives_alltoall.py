"""Integration tests for the alltoall extension."""

import pytest

from repro.bench.harness import run_alltoall
from repro.collectives.registry import (
    alltoall_algorithm,
    list_alltoall_algorithms,
)
from repro.hardware import Machine, Mode

ALGOS = ["alltoall-shift-current", "alltoall-shift-shaddr"]


class TestAlltoallCorrectness:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_every_rank_gets_every_block(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        result = run_alltoall(
            m, algorithm, block_bytes=1024, iters=1, verify=True
        )
        assert result.nbytes == 1024 * m.nprocs

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_odd_block(self, algorithm):
        m = Machine(torus_dims=(3, 2, 1), mode=Mode.QUAD)
        run_alltoall(m, algorithm, block_bytes=333, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_single_node(self, algorithm):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        run_alltoall(m, algorithm, block_bytes=2048, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_smp_mode(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.SMP)
        run_alltoall(m, algorithm, block_bytes=1024, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_mesh(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD, wrap=False)
        run_alltoall(m, algorithm, block_bytes=512, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_zero_block(self, algorithm):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        assert run_alltoall(m, algorithm, block_bytes=0).elapsed_us >= 0

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_single_rank(self, algorithm):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.SMP)
        run_alltoall(m, algorithm, block_bytes=128, iters=1, verify=True)

    def test_iterations(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        result = run_alltoall(
            m, "alltoall-shift-shaddr", block_bytes=512, iters=2, verify=True
        )
        assert len(result.iterations_us) == 2

    def test_registry(self):
        assert list_alltoall_algorithms() == sorted(ALGOS)
        with pytest.raises(KeyError):
            alltoall_algorithm("nope")


class TestAlltoallShape:
    def test_shaddr_beats_current(self):
        results = {}
        for algorithm in ALGOS:
            m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
            results[algorithm] = run_alltoall(
                m, algorithm, block_bytes=16 * 1024
            ).elapsed_us
        assert (
            results["alltoall-shift-shaddr"]
            < results["alltoall-shift-current"]
        )

    def test_traffic_scales_quadratically_with_nodes(self):
        small = run_alltoall(
            Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD),
            "alltoall-shift-shaddr", 8 * 1024,
        ).elapsed_us
        large = run_alltoall(
            Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD),
            "alltoall-shift-shaddr", 8 * 1024,
        ).elapsed_us
        # Doubling the node count more than doubles the time (N^2 blocks,
        # N per-rank volume).
        assert large > 2.0 * small
