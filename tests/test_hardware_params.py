"""Unit tests for BGPParams and the memory model."""

import pytest

from repro.hardware.memory import MemoryModel
from repro.hardware.params import BGPParams
from repro.util.units import MIB


class TestBGPParams:
    def test_defaults_valid(self):
        p = BGPParams()
        assert p.cores_per_node == 4
        assert p.torus_link_bw == 425.0
        assert p.tree_link_bw == 850.0
        assert p.l3_bytes == 8 * MIB

    def test_with_overrides(self):
        p = BGPParams().with_overrides(pipeline_width=32 * 1024)
        assert p.pipeline_width == 32 * 1024
        # original untouched (frozen dataclass)
        assert BGPParams().pipeline_width == 64 * 1024

    def test_invalid_positive_field_rejected(self):
        with pytest.raises(ValueError):
            BGPParams(torus_link_bw=0.0)

    def test_invalid_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            BGPParams(tree_hop_latency=-0.1)

    def test_dram_faster_than_l3_rejected(self):
        with pytest.raises(ValueError):
            BGPParams(mem_bw_l3=100.0, mem_bw_dram=200.0)

    def test_tlb_slot_bytes_must_be_supported_size(self):
        with pytest.raises(ValueError):
            BGPParams(tlb_slot_bytes=2 * MIB)
        for size in (1 * MIB, 16 * MIB, 256 * MIB):
            BGPParams(tlb_slot_bytes=size)

    def test_frozen(self):
        p = BGPParams()
        with pytest.raises(Exception):
            p.torus_link_bw = 1.0  # type: ignore[misc]


class TestMemoryModel:
    def test_l3_regime_below_cache(self):
        p = BGPParams()
        model = MemoryModel(p)
        r = model.regime(1 * MIB)
        assert r.raw_capacity == p.mem_bw_l3
        assert r.core_copy_cap == p.core_copy_bw_l3
        assert r.fifo_copy_cap == p.fifo_copy_bw_l3
        assert r.core_reduce_cap == p.core_reduce_bw_l3

    def test_dram_regime_beyond_twice_cache(self):
        p = BGPParams()
        model = MemoryModel(p)
        r = model.regime(3 * p.l3_bytes)
        assert r.raw_capacity == p.mem_bw_dram
        assert r.core_copy_cap == p.core_copy_bw_dram

    def test_midpoint_blend(self):
        p = BGPParams()
        model = MemoryModel(p)
        r = model.regime(p.l3_bytes + p.l3_bytes // 2)
        expected = 0.5 * (p.mem_bw_l3 + p.mem_bw_dram)
        assert r.raw_capacity == pytest.approx(expected)

    def test_exactly_l3_is_pure_l3(self):
        p = BGPParams()
        model = MemoryModel(p)
        assert model.regime(p.l3_bytes).raw_capacity == p.mem_bw_l3

    def test_monotone_non_increasing(self):
        model = MemoryModel(BGPParams())
        sizes = [0, 1 * MIB, 8 * MIB, 10 * MIB, 12 * MIB, 16 * MIB, 64 * MIB]
        caps = [model.regime(s).raw_capacity for s in sizes]
        assert all(a >= b for a, b in zip(caps, caps[1:]))

    def test_negative_working_set_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel(BGPParams()).regime(-1)
