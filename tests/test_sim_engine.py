"""Unit tests for the DES kernel: engine, events, processes."""

import pytest

from repro.sim import Engine, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout


class TestEngineBasics:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_timeout_advances_clock(self):
        eng = Engine()
        log = []

        def p():
            yield eng.timeout(5.0)
            log.append(eng.now)
            yield eng.timeout(2.5)
            log.append(eng.now)

        eng.spawn(p())
        eng.run()
        assert log == [5.0, 7.5]

    def test_negative_timeout_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Timeout(eng, -1.0)

    def test_deterministic_tie_break_is_fifo(self):
        eng = Engine()
        order = []

        def p(i):
            yield eng.timeout(1.0)
            order.append(i)

        for i in range(5):
            eng.spawn(p(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_stops_clock(self):
        eng = Engine()

        def p():
            yield eng.timeout(100.0)

        eng.spawn(p())
        eng.run(until=10.0)
        assert eng.now == 10.0

    def test_cannot_schedule_in_past(self):
        eng = Engine()

        def p():
            yield eng.timeout(5.0)
            eng.call_at(1.0, lambda _v: None)

        eng.spawn(p())
        with pytest.raises(SimulationError):
            eng.run()

    def test_process_return_value_via_join(self):
        eng = Engine()
        got = []

        def child():
            yield eng.timeout(3.0)
            return 42

        def parent():
            value = yield eng.spawn(child(), name="child")
            got.append((value, eng.now))

        eng.spawn(parent(), name="parent")
        eng.run()
        assert got == [(42, 3.0)]

    def test_yield_non_waitable_raises(self):
        eng = Engine()

        def p():
            yield "nope"

        eng.spawn(p())
        with pytest.raises(SimulationError):
            eng.run()

    def test_exception_in_process_annotated(self):
        eng = Engine()

        def p():
            yield eng.timeout(1.0)
            raise RuntimeError("boom")

        eng.spawn(p(), name="bad")
        with pytest.raises(SimulationError, match="bad"):
            eng.run()

    def test_deadlock_detection(self):
        eng = Engine()

        def p():
            yield Event(eng)  # never triggered

        proc = eng.spawn(p(), name="stuck")
        with pytest.raises(SimulationError, match="deadlock"):
            eng.run_until_processes_finish([proc])


class TestEvents:
    def test_event_wakes_all_waiters(self):
        eng = Engine()
        ev = Event(eng)
        woke = []

        def w(i):
            value = yield ev
            woke.append((i, value, eng.now))

        for i in range(3):
            eng.spawn(w(i))

        def t():
            yield eng.timeout(4.0)
            ev.trigger("data")

        eng.spawn(t())
        eng.run()
        assert woke == [(0, "data", 4.0), (1, "data", 4.0), (2, "data", 4.0)]

    def test_already_triggered_event_resumes_immediately(self):
        eng = Engine()
        ev = Event(eng)
        ev.trigger(7)
        got = []

        def p():
            value = yield ev
            got.append((value, eng.now))

        eng.spawn(p())
        eng.run()
        assert got == [(7, 0.0)]

    def test_double_trigger_raises(self):
        eng = Engine()
        ev = Event(eng)
        ev.trigger()
        with pytest.raises(RuntimeError):
            ev.trigger()

    def test_on_trigger_callback_immediate_when_done(self):
        eng = Engine()
        ev = Event(eng)
        ev.trigger(3)
        seen = []
        ev.on_trigger(seen.append)
        assert seen == [3]

    def test_anyof_returns_first(self):
        eng = Engine()
        a, b = Event(eng), Event(eng)
        got = []

        def p():
            index, value = yield AnyOf(eng, [a, b])
            got.append((index, value, eng.now))

        eng.spawn(p())

        def t():
            yield eng.timeout(2.0)
            b.trigger("bee")
            yield eng.timeout(2.0)
            a.trigger("ay")

        eng.spawn(t())
        eng.run()
        assert got == [(1, "bee", 2.0)]

    def test_anyof_empty_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            AnyOf(eng, [])

    def test_allof_waits_for_all(self):
        eng = Engine()
        events = [Event(eng) for _ in range(3)]
        got = []

        def p():
            values = yield AllOf(eng, events)
            got.append((values, eng.now))

        eng.spawn(p())

        def t():
            for i, ev in enumerate(events):
                yield eng.timeout(1.0)
                ev.trigger(i)

        eng.spawn(t())
        eng.run()
        assert got == [([0, 1, 2], 3.0)]

    def test_allof_empty_resumes_immediately(self):
        eng = Engine()
        got = []

        def p():
            values = yield AllOf(eng, [])
            got.append(values)

        eng.spawn(p())
        eng.run()
        assert got == [[]]
