"""Integration tests: allreduce algorithms compute exact element-wise sums
through the full simulated stack (local reduce, ring reduction, broadcast,
intra-node distribution)."""

import numpy as np
import pytest

from repro.bench import run_allreduce
from repro.collectives.registry import allreduce_algorithm
from repro.hardware import Machine, Mode

ALGOS = ["allreduce-torus-current", "allreduce-torus-shaddr", "allreduce-tree"]


class TestAllreduceCorrectness:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_exact_sum_everywhere(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        result = run_allreduce(m, algorithm, count=5000, iters=1, verify=True)
        assert result.elapsed_us > 0

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_odd_count(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        run_allreduce(m, algorithm, count=7777, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_tiny_count(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        run_allreduce(m, algorithm, count=1, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_zero_count(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        result = run_allreduce(m, algorithm, count=0, iters=1)
        assert result.elapsed_us >= 0

    @pytest.mark.parametrize(
        "algorithm", ["allreduce-torus-current", "allreduce-tree"]
    )
    def test_asymmetric_torus(self, algorithm):
        m = Machine(torus_dims=(3, 2, 1), mode=Mode.QUAD)
        run_allreduce(m, algorithm, count=4000, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_single_node(self, algorithm):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        run_allreduce(m, algorithm, count=3000, iters=1, verify=True)

    def test_multiple_iterations(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        result = run_allreduce(
            m, "allreduce-torus-shaddr", count=4096, iters=3, verify=True
        )
        assert len(result.iterations_us) == 3

    def test_current_works_in_smp_mode(self):
        # No intra-node stages; the network protocol alone.
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.SMP)
        run_allreduce(
            m, "allreduce-torus-current", count=4000, iters=1, verify=True
        )

    def test_shaddr_requires_quad(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.DUAL)
        with pytest.raises(ValueError):
            run_allreduce(m, "allreduce-torus-shaddr", count=128, iters=1)

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            allreduce_algorithm("nope")


class TestAllreducePerformanceShape:
    def test_new_beats_current_at_large_counts(self):
        results = {}
        for algorithm in ["allreduce-torus-current", "allreduce-torus-shaddr"]:
            m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            results[algorithm] = run_allreduce(
                m, algorithm, count=256 * 1024
            ).bandwidth_mbs
        assert (
            results["allreduce-torus-shaddr"]
            > results["allreduce-torus-current"]
        )

    def test_improvement_grows_with_message_size(self):
        ratios = []
        for count in [16 * 1024, 256 * 1024]:
            row = {}
            for algorithm in [
                "allreduce-torus-current", "allreduce-torus-shaddr"
            ]:
                m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
                row[algorithm] = run_allreduce(
                    m, algorithm, count=count
                ).bandwidth_mbs
            ratios.append(
                row["allreduce-torus-shaddr"] / row["allreduce-torus-current"]
            )
        assert ratios[1] > ratios[0]

    def test_tree_wins_for_short_messages(self):
        tree = run_allreduce(
            Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD),
            "allreduce-tree", count=512,
        )
        torus = run_allreduce(
            Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD),
            "allreduce-torus-shaddr", count=512,
        )
        assert tree.elapsed_us < torus.elapsed_us
