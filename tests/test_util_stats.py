"""Unit tests for repro.util.stats and repro.util.validation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import RunningStats, summarize
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_type,
)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.variance == 0.0

    def test_single(self):
        s = summarize([4.0])
        assert s.mean == 4.0
        assert s.stddev == 0.0
        assert s.minimum == s.maximum == 4.0

    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.variance == pytest.approx(5.0 / 3.0)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_merge_matches_combined(self):
        a = summarize([1.0, 5.0, 2.0])
        b = summarize([7.0, 3.0])
        merged = a.merge(b)
        combined = summarize([1.0, 5.0, 2.0, 7.0, 3.0])
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        a = summarize([1.0, 2.0])
        assert a.merge(RunningStats()) is a
        assert RunningStats().merge(a) is a

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_mean_matches_numpy_style(self, xs):
        s = summarize(xs)
        assert s.mean == pytest.approx(sum(xs) / len(xs), rel=1e-9, abs=1e-9)
        assert s.minimum == min(xs)
        assert s.maximum == max(xs)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30),
    )
    def test_merge_is_order_insensitive(self, xs, ys):
        m1 = summarize(xs).merge(summarize(ys))
        m2 = summarize(ys).merge(summarize(xs))
        assert m1.mean == pytest.approx(m2.mean, rel=1e-9, abs=1e-9)
        assert m1.count == m2.count


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_in_range(self):
        check_in_range("x", 5, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_check_type(self):
        check_type("x", 5, int)
        check_type("x", 5, (int, float))
        with pytest.raises(TypeError):
            check_type("x", "s", int)

    def test_check_power_of_two(self):
        check_power_of_two("x", 1)
        check_power_of_two("x", 64)
        for bad in (0, -2, 3, 48):
            with pytest.raises(ValueError):
                check_power_of_two("x", bad)
