"""The prediction service (``repro.serve``) and its serving tiers.

The invariants under test mirror ``docs/serving.md``:

* **bit-identity** — a warm-pool, memoized, or disk-cached answer is
  byte-for-byte the cold serial harness's answer (same pickle digest),
  across the three headline protocols;
* **cache hygiene** — the on-disk cache refuses entries recorded at a
  different git revision or with a tampered spec/payload (stale results
  are refused, never silently served), and tolerates a torn trailing
  write;
* **coalescing** — concurrent duplicate queries provably collapse onto
  one simulation;
* **observability** — tier hit counters, pool occupancy and latency
  percentiles reflect what actually happened.

Everything runs in-process: servers bind ephemeral loopback ports and
clients are threads, exactly like the farm tests.
"""

import base64
import hashlib
import json
import pickle
import threading
import time

import pytest

from repro.bench.farm import pickle_digest
from repro.bench.harness import run_collective
from repro.bench.warmpool import WarmMachinePool
from repro.hardware.machine import Machine, Mode
from repro.serve.client import ServeClient, ServeRequestError, parse_address
from repro.serve.server import start_background_server
from repro.serve.service import (
    DiskCache,
    MemoCache,
    PredictionService,
    QueryError,
    normalize_query,
    query_key,
)
from repro.telemetry.manifest import compare_bench
from repro.telemetry.runtime import parse_prometheus

#: the paper's headline crossover protocols, at test-sized points
HEADLINE = [
    {"family": "bcast", "algorithm": "tree-shaddr", "x": 16384, "iters": 2},
    {"family": "bcast", "algorithm": "torus-shaddr", "x": 32768, "iters": 2},
    {"family": "allreduce", "algorithm": "allreduce-torus-shaddr",
     "x": 2048, "iters": 2},
]


def _direct_digest(query: dict) -> str:
    """The cold serial harness's answer for a query, as a pickle digest."""
    machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
    result = run_collective(
        machine, query["family"], query["algorithm"], query["x"],
        iters=query["iters"],
    )
    return pickle_digest(result)


# -- warm machine pool ----------------------------------------------------

class TestWarmMachinePool:
    def test_checkout_reuses_per_geometry(self):
        pool = WarmMachinePool()
        first, warm_first = pool.checkout((2, 2, 2))
        second, warm_second = pool.checkout((2, 2, 2))
        assert not warm_first and warm_second
        assert first is second
        other, warm_other = pool.checkout((2, 2, 1))
        assert not warm_other and other is not first

    def test_keying_covers_mode_wrap_network(self):
        pool = WarmMachinePool()
        base, _ = pool.checkout((2, 2, 2))
        assert pool.checkout((2, 2, 2), mode="SMP")[0] is not base
        assert pool.checkout((2, 2, 2), wrap=False)[0] is not base
        assert pool.checkout((2, 2, 2), network="fattree")[0] is not base
        # Mode enum and its name are the same key.
        assert pool.checkout((2, 2, 2), mode=Mode.QUAD)[0] is base

    def test_lru_eviction_is_bounded(self):
        pool = WarmMachinePool(max_machines=2)
        a, _ = pool.checkout((2, 1, 1))
        pool.checkout((2, 2, 1))
        pool.checkout((2, 2, 2))  # evicts (2,1,1)
        assert pool.occupancy() == 2
        assert pool.evictions == 1
        rebuilt, warm = pool.checkout((2, 1, 1))
        assert not warm and rebuilt is not a

    def test_stats_counters(self):
        pool = WarmMachinePool()
        pool.checkout((2, 2, 2))
        pool.checkout((2, 2, 2))
        stats = pool.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["machines"] == 1

    def test_pooled_machine_results_bit_identical(self):
        pool = WarmMachinePool()
        query = HEADLINE[0]
        machine, _ = pool.checkout((2, 2, 2))
        run_collective(machine, "bcast", "tree-shaddr", 4096, iters=1)
        reused, warm = pool.checkout((2, 2, 2))
        assert warm
        result = run_collective(
            reused, query["family"], query["algorithm"], query["x"],
            iters=query["iters"],
        )
        assert pickle_digest(result) == _direct_digest(query)


# -- normalization and cache keys -----------------------------------------

class TestNormalizeQuery:
    def test_defaults_are_made_explicit(self):
        spec = normalize_query({"family": "bcast", "algorithm": "tree-shaddr",
                                "x": 4096})
        assert spec["dims"] == (2, 2, 2)
        assert spec["mode"] == "QUAD"
        assert spec["seed"] == 1234 and spec["iters"] == 1
        assert spec["wrap"] is True and spec["network"] == "torus"

    def test_auto_resolves_through_selection_table(self):
        short = normalize_query({"family": "bcast", "algorithm": "auto",
                                 "x": 4096})
        large = normalize_query({"family": "bcast", "algorithm": "auto",
                                 "x": 4 * 1024 * 1024})
        assert short["algorithm"] == "tree-shmem"
        assert large["algorithm"] == "torus-shaddr"

    def test_key_covers_every_identity_field(self):
        base = {"family": "bcast", "algorithm": "tree-shaddr", "x": 4096}
        key = query_key(normalize_query(base))
        assert query_key(normalize_query(base)) == key  # stable
        for variant in (
            {"x": 8192}, {"seed": 7}, {"iters": 2}, {"mode": "SMP"},
            {"dims": [2, 2, 1]}, {"algorithm": "tree-shmem"},
        ):
            other = query_key(normalize_query({**base, **variant}))
            assert other != key, f"key ignored {variant}"

    def test_refuses_unservable_fields(self):
        base = {"family": "bcast", "algorithm": "tree-shaddr", "x": 4096}
        for refused in (
            {"verify": True}, {"deadline_us": 100.0},
            {"faults": [{"kind": "x"}]}, {"fresh_machine": True},
            {"bogus": 1},
        ):
            with pytest.raises(QueryError):
                normalize_query({**base, **refused})

    def test_refuses_unknown_family_and_bad_geometry(self):
        with pytest.raises(QueryError):
            normalize_query({"family": "nope", "x": 1})
        with pytest.raises(QueryError):
            normalize_query({"family": "bcast", "algorithm": "tree-shaddr",
                             "x": 4096, "dims": [2, 2]})
        with pytest.raises(QueryError):
            normalize_query({"family": "bcast", "algorithm": "tree-shaddr",
                             "x": 4096, "mode": "OCTO"})

    def test_unknown_algorithm_surfaces_at_normalize_time(self):
        with pytest.raises(KeyError):
            normalize_query({"family": "bcast", "algorithm": "tree-shadr",
                             "x": 4096})


# -- the memo cache --------------------------------------------------------

class TestMemoCache:
    def test_lru_bound_and_counters(self):
        cache = MemoCache(max_entries=2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refresh a
        cache.put("c", "C")  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == "A" and cache.get("c") == "C"
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3 and stats["misses"] == 1


# -- tier bit-identity -----------------------------------------------------

class TestTierBitIdentity:
    @pytest.mark.parametrize("query", HEADLINE,
                             ids=[q["algorithm"] for q in HEADLINE])
    def test_cold_warm_memo_identical_to_serial_harness(self, query):
        expected = _direct_digest(query)

        cold = PredictionService(use_pool=False, use_memo=False)
        cold_response = cold.serve(query)
        assert cold_response["tier"] == "cold"
        assert cold_response["digest"] == expected

        warm = PredictionService(use_memo=False)
        # Prime the pool with a *different* point of the same geometry so
        # the measured query really runs on a reused machine.
        warm.serve({**query, "x": query["x"] // 2})
        warm_response = warm.serve(query)
        assert warm_response["tier"] == "warm"
        assert warm_response["digest"] == expected

        memo = PredictionService()
        memo.serve(query)
        memo_response = memo.serve(query)
        assert memo_response["tier"] == "memo"
        assert memo_response["digest"] == expected

    def test_memo_hit_skips_computation(self, monkeypatch):
        service = PredictionService()
        calls = []
        original = service.compute

        def counting(spec):
            calls.append(spec)
            return original(spec)

        monkeypatch.setattr(service, "compute", counting)
        query = {"family": "bcast", "algorithm": "tree-shaddr", "x": 4096}
        first = service.serve(query)
        second = service.serve(query)
        assert len(calls) == 1
        assert second["tier"] == "memo"
        assert second["digest"] == first["digest"]

    def test_barrier_never_uses_the_pool(self):
        service = PredictionService()
        service.serve({"family": "bcast", "algorithm": "tree-shaddr",
                       "x": 4096})
        response = service.serve({"family": "barrier",
                                  "algorithm": "barrier-gi", "x": 0})
        # The pool holds a (2,2,2) machine, but a barrier must not reuse
        # it (no working set installed) — it computes cold.
        assert response["tier"] == "cold"


# -- the on-disk cache -----------------------------------------------------

class TestDiskCache:
    QUERY = {"family": "bcast", "algorithm": "tree-shaddr", "x": 4096,
             "iters": 2}

    def _primed_cache(self, tmp_path):
        path = str(tmp_path / "serve.cache")
        service = PredictionService(cache_path=path)
        response = service.serve(self.QUERY)
        return path, response

    def test_restart_serves_from_disk(self, tmp_path):
        path, first = self._primed_cache(tmp_path)
        restarted = PredictionService(cache_path=path)
        assert restarted.disk.loaded == 1
        response = restarted.serve(self.QUERY)
        assert response["tier"] == "disk"
        assert response["digest"] == first["digest"]
        # Promotion: the second repeat is an in-memory hit.
        assert restarted.serve(self.QUERY)["tier"] == "memo"

    def test_git_rev_mismatch_refuses_all_entries(self, tmp_path, capsys):
        path, _ = self._primed_cache(tmp_path)
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["git_rev"] = "0000000"
        with open(path, "w") as handle:
            handle.write("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        stale = DiskCache(path)
        assert len(stale) == 0
        assert stale.loaded == 0
        assert stale.stale_git_rev == "0000000"
        # A stale file is replaced on the next store, not appended to.
        service = PredictionService(cache_path=path)
        service.serve(self.QUERY)
        assert DiskCache(path).loaded == 1

    def test_tampered_spec_is_refused(self, tmp_path):
        path, _ = self._primed_cache(tmp_path)
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        entry["spec"]["x"] = 8192  # re-label the answer as another point
        with open(path, "w") as handle:
            handle.write("\n".join([lines[0], json.dumps(entry)]) + "\n")
        cache = DiskCache(path)
        assert len(cache) == 0 and cache.dropped == 1

    def test_corrupt_payload_is_refused(self, tmp_path):
        path, _ = self._primed_cache(tmp_path)
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        data = bytearray(base64.b64decode(entry["data"]))
        data[len(data) // 2] ^= 0xFF
        entry["data"] = base64.b64encode(bytes(data)).decode("ascii")
        with open(path, "w") as handle:
            handle.write("\n".join([lines[0], json.dumps(entry)]) + "\n")
        cache = DiskCache(path)
        assert len(cache) == 0 and cache.dropped == 1

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path, first = self._primed_cache(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"kind": "result", "key": "torn')  # no newline
        cache = DiskCache(path)
        assert cache.loaded == 1 and cache.dropped == 1
        service = PredictionService(cache_path=path)
        assert service.serve(self.QUERY)["digest"] == first["digest"]

    def test_unpickling_refuses_foreign_globals(self, tmp_path):
        path, _ = self._primed_cache(tmp_path)
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        # A doctored payload whose pickle references an arbitrary
        # callable must not survive a cache read.
        evil = pickle.dumps(print, protocol=4)
        entry["data"] = base64.b64encode(evil).decode("ascii")
        entry["digest"] = hashlib.sha256(evil).hexdigest()
        with open(path, "w") as handle:
            handle.write("\n".join([lines[0], json.dumps(entry)]) + "\n")
        cache = DiskCache(path)
        assert cache.get(entry["key"]) is None


# -- the server: protocol, coalescing, sweep -------------------------------

class TestServer:
    def test_predict_select_sweep_roundtrip(self):
        with start_background_server() as background:
            with ServeClient(background.address) as client:
                assert client.ping()
                first = client.predict(**HEADLINE[0])
                assert first["tier"] == "cold"
                assert first["digest"] == _direct_digest(HEADLINE[0])
                assert client.predict(**HEADLINE[0])["tier"] == "memo"

                selection = client.select(
                    family="bcast", x=16384, iters=2,
                    candidates=["tree-shaddr", "tree-shmem"],
                )
                assert selection["selected"] in ("tree-shaddr", "tree-shmem")
                assert selection["table_choice"] == "tree-shaddr"
                assert len(selection["candidates"]) == 2
                # tree-shaddr was measured through the memo tier.
                tiers = {entry["algorithm"]: entry["tier"]
                         for entry in selection["candidates"]}
                assert tiers["tree-shaddr"] == "memo"

                sweep = client.sweep([
                    HEADLINE[0],                      # cached -> memo
                    {**HEADLINE[0], "x": 2048},       # computed in batch
                    HEADLINE[0],                      # duplicate -> memo
                ])
                tiers = [point["tier"] for point in sweep["points"]]
                assert tiers == ["memo", "batch", "memo"]
                assert (sweep["points"][0]["digest"]
                        == sweep["points"][2]["digest"])

                stats = client.stats()
                assert stats["tiers"]["memo"] >= 2
                assert stats["latency"]["count"] >= 4
                assert stats["server"]["inflight"] == 0

    def test_metrics_and_trace_ops_mirror_stats(self):
        with start_background_server() as background:
            with ServeClient(background.address) as client:
                client.predict(**HEADLINE[0])
                client.predict(**HEADLINE[0])  # memo hit
                client.sweep([HEADLINE[0], {**HEADLINE[0], "x": 2048}])
                stats = client.stats()
                metrics = client.request({"op": "metrics"})
                trace = client.request({"op": "trace"})
        # The registry is synced from the same locked stats snapshot the
        # stats op reads, so the two views must agree exactly.
        counters = metrics["metrics"]["counters"]
        tier_counts = counters["serve_tier_answers_total"]
        for tier, count in stats["tiers"].items():
            assert tier_counts.get(f"tier={tier}", 0.0) == count
        assert (counters["serve_requests_total"]["op=predict"]
                == stats["requests"]["predict"])
        # ...and the Prometheus exposition parses back to the same
        # numbers (the scrape path of `repro serve --metrics-port`).
        parsed = parse_prometheus(metrics["exposition"])
        assert parsed["serve_tier_answers_total"] == {
            labels: float(value) for labels, value in tier_counts.items()
        }
        latency = metrics["metrics"]["histograms"][
            "serve_request_latency_seconds"
        ][""]
        assert latency["count"] >= 4
        # The trace op exposes the finished serve spans: the sweep query
        # span parents its compute-batch span within one trace.
        spans = trace["spans"]
        assert {"serve.predict", "serve.sweep"} <= {
            item["name"] for item in spans
        }
        sweeps = [item for item in spans if item["name"] == "serve.sweep"]
        batches = [item for item in spans
                   if item["name"] == "serve.sweep.batch"]
        assert any(
            batch["parent_id"] == sweep["span_id"]
            and batch["trace_id"] == sweep["trace_id"]
            for sweep in sweeps for batch in batches
        )

    def test_sweep_batch_answers_bit_identical(self):
        with start_background_server() as background:
            with ServeClient(background.address) as client:
                sweep = client.sweep(list(HEADLINE))
                for query, point in zip(HEADLINE, sweep["points"]):
                    assert point["tier"] == "batch"
                    assert point["digest"] == _direct_digest(query)

    def test_malformed_queries_are_refused_not_fatal(self):
        with start_background_server() as background:
            with ServeClient(background.address) as client:
                with pytest.raises(ServeRequestError):
                    client.predict(family="nope", x=1)
                with pytest.raises(ServeRequestError):
                    client.predict(family="bcast", algorithm="tree-shaddr",
                                   x=4096, verify=True)
                with pytest.raises(ServeRequestError):
                    client.request({"op": "no-such-op"})
                # The connection and server both survive.
                assert client.ping()
                stats = client.stats()
                assert stats["errors"] == 3

    def test_concurrent_duplicates_coalesce_to_one_simulation(self):
        service = PredictionService()
        calls = []
        release = threading.Event()
        original = service.compute

        def gated(spec):
            calls.append(spec)
            assert release.wait(timeout=30), "coalescing test never released"
            return original(spec)

        service.compute = gated
        query = {"family": "bcast", "algorithm": "tree-shaddr", "x": 4096,
                 "iters": 2}
        responses = []

        def ask():
            with ServeClient(background.address) as client:
                responses.append(client.predict(**query))

        with start_background_server(service) as background:
            threads = [threading.Thread(target=ask) for _ in range(3)]
            for thread in threads:
                thread.start()
            # stats runs on the event loop, so it stays answerable while
            # the compute thread is gated: wait until both riders have
            # provably coalesced onto the in-flight future.
            with ServeClient(background.address) as observer:
                deadline = time.time() + 30
                while time.time() < deadline:
                    if observer.stats()["coalesced"] == 2:
                        break
                    time.sleep(0.01)
                else:
                    release.set()
                    pytest.fail("riders never coalesced")
                release.set()
                for thread in threads:
                    thread.join(timeout=30)
                stats = observer.stats()

        assert len(calls) == 1, "duplicates ran extra simulations"
        assert stats["coalesced"] == 2
        assert stats["tiers"]["cold"] == 1
        assert len({r["digest"] for r in responses}) == 1
        assert sorted(bool(r.get("coalesced")) for r in responses) == [
            False, True, True,
        ]

    def test_analytic_tier_opt_in(self):
        service = PredictionService(analytic_default=True, use_memo=False)
        with start_background_server(service) as background:
            with ServeClient(background.address) as client:
                served = client.predict(family="bcast",
                                        algorithm="tree-shaddr",
                                        x=65536, iters=2)
                # An explicit opt-out must override the server default.
                des = client.predict(family="bcast", algorithm="tree-shaddr",
                                     x=65536, iters=2, analytic=False)
        assert served["tier"] == "analytic"
        assert des["tier"] in ("cold", "warm")
        assert served["elapsed_us"] == pytest.approx(
            des["elapsed_us"], rel=5e-3,
        )


# -- client ----------------------------------------------------------------

class TestClient:
    def test_parse_address(self):
        assert parse_address("localhost:8766") == ("localhost", 8766)
        assert parse_address(("h", 1)) == ("h", 1)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address("host:not-a-number")

    def test_reconnect_after_server_restart(self, tmp_path):
        cache = str(tmp_path / "serve.cache")
        query = {"family": "bcast", "algorithm": "tree-shaddr", "x": 4096,
                 "iters": 2}
        first_server = start_background_server(
            PredictionService(cache_path=cache),
        )
        host, port = first_server.address
        client = ServeClient((host, port))
        first = client.predict(**query)
        first_server.stop()
        # Same port, fresh process state: the persistent cache answers
        # without re-simulating, and the client reconnects transparently.
        second_server = start_background_server(
            PredictionService(cache_path=cache), port=port,
        )
        try:
            response = client.predict(**query)
        finally:
            client.close()
            second_server.stop()
        assert response["tier"] == "disk"
        assert response["digest"] == first["digest"]


# -- the check-bench entry:sweep views -------------------------------------

class TestBenchSweepViews:
    def _bench(self):
        points = [{"x": 4096, "elapsed_us": 100.0},
                  {"x": 8192, "elapsed_us": 200.0}]
        return {"entries": {"serve": {
            "smoke": False,
            "solver": "vectorized",
            "sweeps": {
                "cold": {"solver": "vectorized", "analytic_hits": 0,
                         "points": [dict(p) for p in points]},
                "memo": {"solver": "vectorized", "analytic_hits": 0,
                         "points": [dict(p) for p in points]},
                "analytic": {"solver": "vectorized", "analytic_hits": 2,
                             "points": [dict(p) for p in points]},
            },
        }}}

    def test_identical_sweeps_gate_clean_at_zero_tolerance(self):
        assert compare_bench(self._bench(), "serve:cold", "serve:memo",
                             tolerance=0.0) == []

    def test_drift_between_sweeps_is_reported(self):
        bench = self._bench()
        bench["entries"]["serve"]["sweeps"]["memo"]["points"][1][
            "elapsed_us"] = 201.0
        drifts = compare_bench(bench, "serve:cold", "serve:memo",
                               tolerance=0.0)
        assert len(drifts) == 1 and "x=8192" in drifts[0]

    def test_analytic_sweep_refused_without_cross_solver(self):
        drifts = compare_bench(self._bench(), "serve:cold", "serve:analytic",
                               tolerance=0.0)
        assert drifts and "different solvers" in drifts[0]
        assert compare_bench(self._bench(), "serve:cold", "serve:analytic",
                             tolerance=0.0, allow_cross_solver=True) == []

    def test_unknown_sweep_label_is_an_error(self):
        drifts = compare_bench(self._bench(), "serve:cold", "serve:nope")
        assert drifts and "no sweep 'nope'" in drifts[0]

    def test_plain_entry_labels_still_work(self):
        bench = self._bench()
        bench["entries"]["other"] = json.loads(
            json.dumps(bench["entries"]["serve"]),
        )
        assert compare_bench(bench, "serve", "other", tolerance=0.0) == []


# -- CLI -------------------------------------------------------------------

class TestServeCli:
    def test_query_and_stats_commands(self, capsys):
        from repro.cli import main as cli_main

        with start_background_server() as background:
            host, port = background.address
            address = f"{host}:{port}"
            status = cli_main([
                "query", address, "--family", "bcast",
                "--algorithm", "tree-shaddr", "--size", "4K", "--iters", "2",
            ])
            assert status == 0
            response = json.loads(capsys.readouterr().out)
            assert response["tier"] == "cold" and response["x"] == 4096

            status = cli_main(["query", address, "--op", "ping"])
            assert status == 0
            assert json.loads(capsys.readouterr().out)["pong"] is True

            # A refused query is exit 1, not a traceback.
            status = cli_main([
                "query", address, "--family", "bcast",
                "--algorithm", "tree-shaddr", "--size", "4K",
                "--json", '{"op": "predict", "family": "bogus", "x": 1}',
            ])
            assert status == 1
            assert "refused" in capsys.readouterr().err

            status = cli_main(["serve", "--stats", address])
            assert status == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["tiers"]["cold"] == 1

    def test_query_unreachable_server_is_exit_2(self, capsys):
        from repro.cli import main as cli_main

        status = cli_main(["query", "127.0.0.1:1", "--op", "ping",
                           "--timeout", "2"])
        assert status == 2
        assert "cannot reach" in capsys.readouterr().err
