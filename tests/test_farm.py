"""The fault-tolerant distributed sweep farm (``repro.bench.farm``).

The invariants under test mirror ``docs/robustness.md``:

* **byte-identical merge** — a campaign fanned across farm workers
  merges to exactly the local executor's output, simulation results
  included;
* **leases, retries, quarantine** — an abandoned lease expires and its
  chunk is re-queued under the bounded-backoff retry budget; a chunk
  that keeps failing is quarantined instead of wedging the campaign;
  duplicate completions are detected and discarded;
* **crash-resumable campaigns** — the fsynced journal survives server
  kills (including torn trailing writes), ``resume`` never re-runs a
  journaled point, and a seeded storm of worker kills / duplicates /
  journal truncation still converges to the serial answer.

Everything runs in-process: the server listens on an ephemeral local
port and the workers are threads, so "killing" a worker is abandoning
its lease and "killing" the server is stopping it mid-campaign.
"""

import base64
import hashlib
import json
import pickle
import random
import threading
import time

import pytest

from repro.bench.farm import (
    DEFAULT_LEASE_S,
    FarmError,
    FarmServer,
    FarmUnreachableError,
    FarmWorker,
    JournalState,
    ProgressJournal,
    farm_execute_points,
    farm_rollups,
    parse_address,
    record_farm_bench_entry,
    register_task,
    resolve_task,
    rpc,
    rpc_retry,
    task_name,
)
from repro.bench.parallel import PointFailure, WorkerPointError, execute_points
from repro.hardware.fault_schedule import RetryPolicy
from repro.telemetry.manifest import CampaignManifest, spec_fingerprint

#: near-zero backoffs so retry paths run at test speed
FAST_RETRY = RetryPolicy(max_attempts=3, base_backoff_us=1e3,
                         backoff_factor=2.0, max_backoff_us=1e4)
FAST_RECONNECT = RetryPolicy(max_attempts=2, base_backoff_us=1e3,
                             backoff_factor=2.0, max_backoff_us=1e4)


# -- farm tasks (registered in-process; workers here are threads) --------

_RUN_LOG = []


def _square(spec):
    return spec["x"] ** 2


def _square_logged(spec):
    _RUN_LOG.append(spec["x"])
    return spec["x"] ** 2


def _always_fails(spec):
    raise ValueError(f"poison point {spec['x']}")


def _fails_on_seven(spec):
    if spec["x"] == 7:
        raise ValueError("unlucky point 7")
    return spec["x"] ** 2


register_task("square", _square)
register_task("square_logged", _square_logged)
register_task("always_fails", _always_fails)
register_task("fails_on_seven", _fails_on_seven)


def _specs(n):
    return [{"x": x} for x in range(n)]


def _server(tmp_path, **kwargs):
    kwargs.setdefault("journal_path", str(tmp_path / "journal.jsonl"))
    kwargs.setdefault("chunk_retry", FAST_RETRY)
    server = FarmServer(port=0, **kwargs)
    server.start()
    return server


def _worker_thread(address, **kwargs):
    worker = FarmWorker(address, reconnect=FAST_RECONNECT, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def _submit(server, specs, task="square", chunk_size=1):
    manifest = CampaignManifest.build(task, specs)
    return rpc(server.address, "submit", manifest=manifest.to_dict(),
               specs=specs, task=task, chunk_size=chunk_size)


# -- protocol plumbing ---------------------------------------------------

class TestPlumbing:
    def test_parse_address(self):
        assert parse_address("10.0.0.5:9000") == ("10.0.0.5", 9000)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        assert parse_address("9000") == ("127.0.0.1", 9000)
        with pytest.raises(FarmError, match="host:port"):
            parse_address("nonsense")

    def test_task_registry_round_trip(self):
        assert resolve_task("square") is _square
        assert task_name(_square) == "square"
        assert resolve_task("run_point").__name__ == "run_point"
        with pytest.raises(FarmError, match="unknown farm task"):
            resolve_task("rm_rf_slash")
        with pytest.raises(FarmError, match="not farm-registered"):
            task_name(lambda spec: spec)

    def test_unknown_op_and_unknown_task_are_refused(self, tmp_path):
        with _server(tmp_path) as server:
            with pytest.raises(FarmError, match="unknown op"):
                rpc(server.address, "exec_shell")
            manifest = CampaignManifest.build("nope", [])
            with pytest.raises(FarmError, match="unknown farm task"):
                rpc(server.address, "submit", manifest=manifest.to_dict(),
                    specs=[], task="nope", chunk_size=1)

    def test_rpc_retry_exhausts_into_unreachable(self):
        with pytest.raises(FarmUnreachableError, match="unreachable"):
            rpc_retry("127.0.0.1:9", "status", policy=FAST_RECONNECT)


# -- campaign manifests --------------------------------------------------

class TestCampaignManifest:
    def test_fingerprint_is_stable_and_spec_sensitive(self):
        specs = [{"x": 1, "dims": (2, 2, 2)}, {"x": 2, "dims": (2, 2, 2)}]
        again = [{"dims": (2, 2, 2), "x": 1}, {"dims": (2, 2, 2), "x": 2}]
        assert spec_fingerprint("square", specs) == \
            spec_fingerprint("square", again)  # key order is canonical
        assert spec_fingerprint("square", specs) != \
            spec_fingerprint("square", specs[::-1])  # order is identity
        assert spec_fingerprint("square", specs) != \
            spec_fingerprint("cube", specs)  # task is identity

    def test_round_trip(self):
        manifest = CampaignManifest.build("square", _specs(3))
        clone = CampaignManifest.from_dict(manifest.to_dict())
        assert clone == manifest
        assert manifest.nspecs == 3

    def test_server_refuses_a_second_campaign(self, tmp_path):
        with _server(tmp_path) as server:
            first = _submit(server, _specs(4))
            assert first == {"campaign": first["campaign"],
                             "attached": False, "total": 4, "completed": 0}
            # Same campaign attaches idempotently ...
            assert _submit(server, _specs(4))["attached"] is True
            # ... a different one is refused (one campaign per journal).
            with pytest.raises(FarmError, match="refuse to mix"):
                _submit(server, _specs(5))


# -- the happy path ------------------------------------------------------

class TestFarmExecution:
    def test_two_workers_merge_identical_to_local(self, tmp_path):
        specs = _specs(11)
        with _server(tmp_path, chunk_size=2) as server:
            for i in range(2):
                _worker_thread(server.address, worker_id=f"w{i}")
            out = farm_execute_points(specs, farm=server.address,
                                      task=_square, poll_s=0.05)
            status = rpc(server.address, "status")
        assert out == execute_points(specs, jobs=1, task=_square)
        assert status["done"] is True
        assert status["stats"]["points_completed"] == 11
        assert status["stats"]["workers_lost"] == 0

    def test_simulation_points_are_byte_identical_to_serial(self, tmp_path):
        specs = [
            {"family": "bcast", "algorithm": "tree-shaddr", "x": x,
             "dims": (2, 2, 1), "mode": "QUAD", "iters": 1}
            for x in (2048, 4096, 8192)
        ]
        serial = execute_points(specs, jobs=1)
        with _server(tmp_path, chunk_size=1) as server:
            _worker_thread(server.address, worker_id="sim")
            farmed = farm_execute_points(specs, farm=server.address,
                                         poll_s=0.05)
        for mine, theirs in zip(farmed, serial):
            assert pickle.dumps(mine, protocol=4) == \
                pickle.dumps(theirs, protocol=4)

    def test_env_routing_reaches_the_farm(self, tmp_path, monkeypatch):
        specs = _specs(4)
        with _server(tmp_path, chunk_size=2) as server:
            _worker_thread(server.address, worker_id="env")
            monkeypatch.setenv("REPRO_FARM", server.address)
            monkeypatch.setenv("REPRO_FARM_CHUNK", "2")
            out = execute_points(specs, task=_square)
        assert out == [0, 1, 4, 9]

    def test_on_error_return_yields_point_failures(self, tmp_path):
        with _server(tmp_path, chunk_size=1) as server:
            _worker_thread(server.address, worker_id="w")
            out = farm_execute_points(
                _specs(9), farm=server.address, task=_fails_on_seven,
                on_error="return", poll_s=0.05,
            )
        assert out[:7] == [x ** 2 for x in range(7)]
        assert isinstance(out[7], PointFailure)
        assert out[7].spec == {"x": 7}
        assert "unlucky point 7" in out[7].traceback
        assert out[8] == 64

    def test_on_error_raise_reruns_serially_with_worker_traceback(
            self, tmp_path):
        with _server(tmp_path, chunk_size=1) as server:
            _worker_thread(server.address, worker_id="w")
            with pytest.raises(WorkerPointError) as excinfo:
                farm_execute_points(
                    [{"x": 7}, {"x": 2}], farm=server.address,
                    task=_fails_on_seven, poll_s=0.05,
                )
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "unlucky point 7" in excinfo.value.worker_traceback


# -- leases, retries, quarantine -----------------------------------------

class TestLeases:
    def test_expired_lease_is_requeued_and_worker_counted_lost(
            self, tmp_path):
        with _server(tmp_path, lease_s=0.15, chunk_size=4) as server:
            _submit(server, _specs(4), chunk_size=4)
            grant = rpc(server.address, "lease", worker="doomed")
            assert grant["chunk"] == 0 and len(grant["points"]) == 4
            # Abandon the lease; the next lease request reaps it and
            # (after the backoff) re-grants the same chunk.
            deadline = time.monotonic() + 10.0
            while True:
                regrant = rpc(server.address, "lease", worker="heir")
                if "chunk" in regrant:
                    break
                assert time.monotonic() < deadline
                time.sleep(min(regrant["wait"], 0.05))
            assert regrant["chunk"] == 0
            status = rpc(server.address, "status")
        assert status["stats"]["leases_expired"] == 1
        assert status["stats"]["chunks_retried"] == 1
        assert status["stats"]["workers_lost"] == 1
        assert status["leased"][0]["worker"] == "heir"

    def test_heartbeat_keeps_a_lease_alive(self, tmp_path):
        with _server(tmp_path, lease_s=0.3, chunk_size=2) as server:
            _submit(server, _specs(2), chunk_size=2)
            grant = rpc(server.address, "lease", worker="beater")
            for _ in range(4):
                time.sleep(0.15)
                beat = rpc(server.address, "heartbeat", worker="beater",
                           chunk=grant["chunk"])
                assert beat["ok"] is True
            status = rpc(server.address, "status")
            assert status["stats"]["leases_expired"] == 0
            # A stale heartbeat (wrong worker) is refused.
            assert rpc(server.address, "heartbeat", worker="imposter",
                       chunk=grant["chunk"])["ok"] is False

    def test_poison_chunk_is_quarantined_after_retry_budget(self, tmp_path):
        with _server(tmp_path, chunk_size=1) as server:
            _worker_thread(server.address, worker_id="w")
            out = farm_execute_points(
                [{"x": 1}, {"x": 2}], farm=server.address,
                task=_always_fails, on_error="return", poll_s=0.05,
            )
            status = rpc(server.address, "status")
        assert all(isinstance(p, PointFailure) for p in out)
        assert all("poison point" in p.traceback for p in out)
        assert status["stats"]["chunks_quarantined"] == 2
        # Every retry ran: attempts reach the budget before quarantine.
        assert status["stats"]["chunks_retried"] == \
            2 * (FAST_RETRY.max_attempts - 1)

    def test_duplicate_completion_is_discarded(self, tmp_path):
        with _server(tmp_path, chunk_size=2) as server:
            _submit(server, _specs(2), chunk_size=2)
            grant = rpc(server.address, "lease", worker="slow")
            outcomes = [(i, "ok", spec["x"] ** 2)
                        for i, spec in grant["points"]]
            first = rpc(server.address, "complete", worker="slow",
                        chunk=grant["chunk"], outcomes=outcomes)
            assert first == {"accepted": 2, "duplicates": 0,
                             "requeued": False}
            again = rpc(server.address, "complete", worker="slower",
                        chunk=grant["chunk"], outcomes=outcomes)
            assert again["duplicates"] == 2 and again["accepted"] == 0
            status = rpc(server.address, "status")
        assert status["stats"]["duplicate_completions"] == 2
        assert status["stats"]["points_completed"] == 2
        assert status["stats"]["digest_mismatches"] == 0

    def test_mismatched_duplicate_counts_as_digest_mismatch(self, tmp_path):
        with _server(tmp_path, chunk_size=1) as server:
            _submit(server, _specs(1), chunk_size=1)
            grant = rpc(server.address, "lease", worker="honest")
            rpc(server.address, "complete", worker="honest",
                chunk=grant["chunk"], outcomes=[(0, "ok", 0)])
            rpc(server.address, "complete", worker="liar",
                chunk=grant["chunk"], outcomes=[(0, "ok", 999)])
            status = rpc(server.address, "status")
            payload = rpc(server.address, "fetch")
        assert status["stats"]["digest_mismatches"] == 1
        # First completion wins; the liar's value never lands.
        (index, state, data), = payload["results"]
        assert pickle.loads(data) == 0


# -- progress journal ----------------------------------------------------

class TestJournal:
    def test_missing_journal_loads_empty(self, tmp_path):
        state = ProgressJournal.load(str(tmp_path / "absent.jsonl"))
        assert state == JournalState()

    def test_torn_tail_is_detected_and_dropped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = ProgressJournal(path)
        for index in range(3):
            data = pickle.dumps(index * 10, protocol=4)
            journal.append({
                "kind": "point", "index": index,
                "digest": hashlib.sha256(data).hexdigest(),
                "data": base64.b64encode(data).decode(),
            })
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "point", "index": 3, "dig')  # torn write
        state = ProgressJournal.load(path)
        assert sorted(state.results) == [0, 1, 2]
        assert state.torn_records == 1

    def test_digest_mismatch_ends_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        good = pickle.dumps(1, protocol=4)
        digest = hashlib.sha256(good).hexdigest()
        encoded = base64.b64encode(good).decode()
        lines = [
            {"kind": "point", "index": 0, "digest": digest,
             "data": encoded},
            # bit-rotted record: digest does not match the payload
            {"kind": "point", "index": 1, "digest": "0" * 64,
             "data": encoded},
            {"kind": "point", "index": 2, "digest": digest,
             "data": encoded},
        ]
        with open(path, "w") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        state = ProgressJournal.load(path)
        # Replay stops at the corrupt record: later lines are untrusted.
        assert sorted(state.results) == [0]
        assert state.torn_records == 1

    def test_fresh_server_refuses_a_used_journal_without_resume(
            self, tmp_path):
        with _server(tmp_path) as server:
            _submit(server, _specs(2))
            path = server.journal_path
        with pytest.raises(FarmError, match="--resume"):
            FarmServer(port=0, journal_path=path)


# -- crash-resumable campaigns -------------------------------------------

class TestResume:
    def test_resume_never_reruns_a_journaled_point(self, tmp_path):
        del _RUN_LOG[:]
        specs = _specs(8)
        path = str(tmp_path / "journal.jsonl")
        server = _server(tmp_path, journal_path=path, chunk_size=1)
        _submit(server, specs, task="square_logged", chunk_size=1)
        # A worker computes exactly 3 chunks, then the server "crashes".
        FarmWorker(server.address, worker_id="early",
                   reconnect=FAST_RECONNECT).run(max_chunks=3)
        server.stop()
        assert sorted(_RUN_LOG) == [0, 1, 2]

        resumed = _server(tmp_path, journal_path=path, chunk_size=1,
                          resume=True)
        _worker_thread(resumed.address, worker_id="late")
        out = farm_execute_points(specs, farm=resumed.address,
                                  task=_square_logged, poll_s=0.05,
                                  reconnect=FAST_RECONNECT)
        status = rpc(resumed.address, "status")
        resumed.stop()
        assert out == [x ** 2 for x in range(8)]
        # Journaled points 0-2 were served from the journal, not re-run.
        assert sorted(_RUN_LOG) == list(range(8))
        assert status["stats"]["resumes"] == 1
        assert status["stats"]["points_completed"] == 8

    def test_resume_survives_a_torn_tail(self, tmp_path):
        specs = _specs(6)
        path = str(tmp_path / "journal.jsonl")
        server = _server(tmp_path, journal_path=path, chunk_size=1)
        _submit(server, specs, chunk_size=1)
        FarmWorker(server.address, worker_id="w",
                   reconnect=FAST_RECONNECT).run(max_chunks=4)
        server.stop()
        # SIGKILL mid-append: the last journal line is half-written.
        with open(path, "rb+") as handle:
            handle.seek(-17, 2)
            handle.truncate()
        resumed = _server(tmp_path, journal_path=path, chunk_size=1,
                          resume=True)
        _worker_thread(resumed.address, worker_id="late")
        out = farm_execute_points(specs, farm=resumed.address,
                                  task=_square, poll_s=0.05,
                                  reconnect=FAST_RECONNECT)
        status = rpc(resumed.address, "status")
        resumed.stop()
        assert out == [x ** 2 for x in range(6)]
        assert status["stats"]["torn_records"] == 1
        assert status["stats"]["resumes"] == 1

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_seeded_chaos_converges_to_the_serial_answer(
            self, tmp_path, seed):
        """Property test: kills + duplicates + truncation stay correct.

        A seeded storm — workers abandoning leases mid-campaign, a
        duplicated chunk completion, a server kill with a truncated
        journal tail, then a resume — must still merge byte-identical
        to the serial run, with no point both completed and quarantined.
        """
        rng = random.Random(seed)
        specs = _specs(rng.randrange(8, 16))
        serial = execute_points(specs, jobs=1, task=_square)
        path = str(tmp_path / "journal.jsonl")

        server = _server(tmp_path, journal_path=path, lease_s=0.2,
                         chunk_size=rng.choice([1, 2, 3]))
        _submit(server, specs, chunk_size=rng.choice([1, 2, 3]))
        # Phase 1: flaky workers that die (abandon leases) after a few
        # chunks; one survivor also re-sends a duplicate completion.
        for index in range(rng.randrange(1, 4)):
            FarmWorker(server.address, worker_id=f"flaky{index}",
                       reconnect=FAST_RECONNECT).run(
                max_chunks=rng.randrange(1, 3))
        grant = rpc(server.address, "lease", worker="dup")
        if "chunk" in grant:
            outcomes = [(i, "ok", spec["x"] ** 2)
                        for i, spec in grant["points"]]
            rpc(server.address, "complete", worker="dup",
                chunk=grant["chunk"], outcomes=outcomes)
            rpc(server.address, "complete", worker="dup",
                chunk=grant["chunk"], outcomes=outcomes)
        # A worker that leases and dies mid-chunk: never completes.
        rpc(server.address, "lease", worker="abandoner")
        # Phase 2: kill the server; maybe tear the journal's last line.
        server.stop()
        if rng.random() < 0.5:
            with open(path, "rb+") as handle:
                size = handle.seek(0, 2)
                handle.truncate(size - rng.randrange(1, 9))
        # Phase 3: resume and drain with fresh workers.
        resumed = _server(tmp_path, journal_path=path, lease_s=1.0,
                          chunk_size=1, resume=True)
        for index in range(2):
            _worker_thread(resumed.address, worker_id=f"drain{index}")
        out = farm_execute_points(specs, farm=resumed.address,
                                  task=_square, poll_s=0.05,
                                  reconnect=FAST_RECONNECT)
        status = rpc(resumed.address, "status")
        resumed.stop()

        assert out == serial
        assert status["stats"]["resumes"] == 1
        assert status["stats"]["points_completed"] == len(specs)
        assert status["quarantined"] == 0


# -- graceful degradation ------------------------------------------------

class TestDegradation:
    def test_unreachable_server_raises_without_fallback(self):
        with pytest.raises(FarmUnreachableError):
            farm_execute_points(_specs(2), farm="127.0.0.1:9",
                                task=_square, reconnect=FAST_RECONNECT)

    def test_local_fallback_runs_the_local_executor(self, capsys):
        out = farm_execute_points(
            _specs(3), farm="127.0.0.1:9", task=_square,
            reconnect=FAST_RECONNECT, local_fallback=True, jobs=1,
        )
        assert out == [0, 1, 4]
        assert "falling back" in capsys.readouterr().err

    def test_env_fallback_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FARM_FALLBACK", "1")
        out = farm_execute_points(_specs(2), farm="127.0.0.1:9",
                                  task=_square, reconnect=FAST_RECONNECT,
                                  jobs=1)
        assert out == [0, 1]

    def test_worker_rides_out_a_server_restart(self, tmp_path):
        specs = _specs(6)
        path = str(tmp_path / "journal.jsonl")
        server = _server(tmp_path, journal_path=path, chunk_size=1)
        _submit(server, specs, chunk_size=1)
        address = server.address
        host, port = parse_address(address)
        # A patient worker keeps retrying while the server is away.
        patient = RetryPolicy(max_attempts=40, base_backoff_us=5e4,
                              backoff_factor=1.5, max_backoff_us=2e5)
        worker = FarmWorker(address, worker_id="patient",
                            reconnect=patient)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        time.sleep(0.3)
        server.stop()
        time.sleep(0.3)  # worker RPCs fail and back off meanwhile
        resumed = FarmServer(host=host, port=port, journal_path=path,
                             chunk_size=1, resume=True,
                             chunk_retry=FAST_RETRY)
        resumed.start()
        out = farm_execute_points(specs, farm=resumed.address,
                                  task=_square, poll_s=0.05,
                                  reconnect=FAST_RECONNECT)
        resumed.stop()
        thread.join(timeout=10.0)
        assert out == [x ** 2 for x in range(6)]
        assert not thread.is_alive()


# -- robustness rollups (BENCH entry) ------------------------------------

class TestBenchEntry:
    def test_rollups_and_entry_shape(self, tmp_path):
        with _server(tmp_path, chunk_size=2) as server:
            _worker_thread(server.address, worker_id="w")
            farm_execute_points(_specs(4), farm=server.address,
                                task=_square, poll_s=0.05)
            status = rpc(server.address, "status")
        rollups = farm_rollups(status)
        assert rollups["total_points"] == 4.0
        assert rollups["points_completed"] == 4.0
        assert rollups["workers_lost"] == 0.0

        path = str(tmp_path / "BENCH_robustness.json")
        with open(path, "w") as handle:
            json.dump({"summary": {"total_runs": 1}}, handle)
        document = record_farm_bench_entry(path, "farm-test", status)
        # Existing campaign content is preserved alongside the entry.
        assert document["summary"] == {"total_runs": 1}
        entry = document["entries"]["farm-test"]
        assert entry["solver"] == "farm"
        points = entry["sweeps"]["farm-robustness"]["points"]
        assert [p["metric"] for p in points][:2] == \
            ["total_points", "points_completed"]
        with open(path) as handle:
            assert json.load(handle) == document

    def test_entry_gates_through_compare_bench(self, tmp_path):
        from repro.telemetry.manifest import compare_bench

        with _server(tmp_path, chunk_size=2) as server:
            _worker_thread(server.address, worker_id="w")
            farm_execute_points(_specs(4), farm=server.address,
                                task=_square, poll_s=0.05)
            status = rpc(server.address, "status")
        path = str(tmp_path / "bench.json")
        record_farm_bench_entry(path, "base", status)
        record_farm_bench_entry(path, "same", status)
        status["stats"]["workers_lost"] = 3
        record_farm_bench_entry(path, "drifted", status)
        with open(path) as handle:
            bench = json.load(handle)
        assert compare_bench(bench, "base", "same") == []
        drifts = compare_bench(bench, "base", "drifted")
        assert any("farm-robustness" in line for line in drifts)
