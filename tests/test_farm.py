"""The fault-tolerant distributed sweep farm (``repro.bench.farm``).

The invariants under test mirror ``docs/robustness.md``:

* **byte-identical merge** — a campaign fanned across farm workers
  merges to exactly the local executor's output, simulation results
  included;
* **leases, retries, quarantine** — an abandoned lease expires and its
  chunk is re-queued under the bounded-backoff retry budget; a chunk
  that keeps failing is quarantined instead of wedging the campaign;
  duplicate completions are detected and discarded;
* **crash-resumable campaigns** — the fsynced journal survives server
  kills (including torn trailing writes), ``resume`` never re-runs a
  journaled point, and a seeded storm of worker kills / duplicates /
  journal truncation still converges to the serial answer.

Everything runs in-process: the server listens on an ephemeral local
port and the workers are threads, so "killing" a worker is abandoning
its lease and "killing" the server is stopping it mid-campaign.
"""

import base64
import hashlib
import json
import os
import pickle
import random
import threading
import time

import pytest

from repro.bench.farm import (
    DEFAULT_LEASE_S,
    FarmError,
    FarmServer,
    FarmUnreachableError,
    FarmWorker,
    JournalState,
    ProgressJournal,
    farm_execute_points,
    farm_rollups,
    parse_address,
    record_farm_bench_entry,
    register_task,
    resolve_task,
    rpc,
    rpc_retry,
    task_name,
)
from repro.bench.parallel import PointFailure, WorkerPointError, execute_points
from repro.hardware.fault_schedule import RetryPolicy
from repro.telemetry.manifest import CampaignManifest, spec_fingerprint
from repro.telemetry.runtime import ENV_RUNTIME_LOG, mint_trace

#: near-zero backoffs so retry paths run at test speed
FAST_RETRY = RetryPolicy(max_attempts=3, base_backoff_us=1e3,
                         backoff_factor=2.0, max_backoff_us=1e4)
FAST_RECONNECT = RetryPolicy(max_attempts=2, base_backoff_us=1e3,
                             backoff_factor=2.0, max_backoff_us=1e4)


# -- farm tasks (registered in-process; workers here are threads) --------

_RUN_LOG = []


def _square(spec):
    return spec["x"] ** 2


def _square_logged(spec):
    _RUN_LOG.append(spec["x"])
    return spec["x"] ** 2


def _always_fails(spec):
    raise ValueError(f"poison point {spec['x']}")


def _fails_on_seven(spec):
    if spec["x"] == 7:
        raise ValueError("unlucky point 7")
    return spec["x"] ** 2


register_task("square", _square)
register_task("square_logged", _square_logged)
register_task("always_fails", _always_fails)
register_task("fails_on_seven", _fails_on_seven)


def _specs(n):
    return [{"x": x} for x in range(n)]


def _server(tmp_path, **kwargs):
    kwargs.setdefault("journal_path", str(tmp_path / "journal.jsonl"))
    kwargs.setdefault("chunk_retry", FAST_RETRY)
    server = FarmServer(port=0, **kwargs)
    server.start()
    return server


def _worker_thread(address, **kwargs):
    worker = FarmWorker(address, reconnect=FAST_RECONNECT, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def _submit(server, specs, task="square", chunk_size=1):
    manifest = CampaignManifest.build(task, specs)
    return rpc(server.address, "submit", manifest=manifest.to_dict(),
               specs=specs, task=task, chunk_size=chunk_size)


# -- protocol plumbing ---------------------------------------------------

class TestPlumbing:
    def test_parse_address(self):
        assert parse_address("10.0.0.5:9000") == ("10.0.0.5", 9000)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        assert parse_address("9000") == ("127.0.0.1", 9000)
        with pytest.raises(FarmError, match="host:port"):
            parse_address("nonsense")

    def test_task_registry_round_trip(self):
        assert resolve_task("square") is _square
        assert task_name(_square) == "square"
        assert resolve_task("run_point").__name__ == "run_point"
        with pytest.raises(FarmError, match="unknown farm task"):
            resolve_task("rm_rf_slash")
        with pytest.raises(FarmError, match="not farm-registered"):
            task_name(lambda spec: spec)

    def test_unknown_op_and_unknown_task_are_refused(self, tmp_path):
        with _server(tmp_path) as server:
            with pytest.raises(FarmError, match="unknown op"):
                rpc(server.address, "exec_shell")
            manifest = CampaignManifest.build("nope", [])
            with pytest.raises(FarmError, match="unknown farm task"):
                rpc(server.address, "submit", manifest=manifest.to_dict(),
                    specs=[], task="nope", chunk_size=1)

    def test_rpc_retry_exhausts_into_unreachable(self):
        with pytest.raises(FarmUnreachableError, match="unreachable"):
            rpc_retry("127.0.0.1:9", "status", policy=FAST_RECONNECT)


# -- campaign manifests --------------------------------------------------

class TestCampaignManifest:
    def test_fingerprint_is_stable_and_spec_sensitive(self):
        specs = [{"x": 1, "dims": (2, 2, 2)}, {"x": 2, "dims": (2, 2, 2)}]
        again = [{"dims": (2, 2, 2), "x": 1}, {"dims": (2, 2, 2), "x": 2}]
        assert spec_fingerprint("square", specs) == \
            spec_fingerprint("square", again)  # key order is canonical
        assert spec_fingerprint("square", specs) != \
            spec_fingerprint("square", specs[::-1])  # order is identity
        assert spec_fingerprint("square", specs) != \
            spec_fingerprint("cube", specs)  # task is identity

    def test_round_trip(self):
        manifest = CampaignManifest.build("square", _specs(3))
        clone = CampaignManifest.from_dict(manifest.to_dict())
        assert clone == manifest
        assert manifest.nspecs == 3

    def test_server_refuses_a_second_campaign(self, tmp_path):
        with _server(tmp_path) as server:
            first = _submit(server, _specs(4))
            assert first == {"campaign": first["campaign"],
                             "attached": False, "total": 4, "completed": 0}
            # Same campaign attaches idempotently ...
            assert _submit(server, _specs(4))["attached"] is True
            # ... a different one is refused (one campaign per journal).
            with pytest.raises(FarmError, match="refuse to mix"):
                _submit(server, _specs(5))


# -- the happy path ------------------------------------------------------

class TestFarmExecution:
    def test_two_workers_merge_identical_to_local(self, tmp_path):
        specs = _specs(11)
        with _server(tmp_path, chunk_size=2) as server:
            for i in range(2):
                _worker_thread(server.address, worker_id=f"w{i}")
            out = farm_execute_points(specs, farm=server.address,
                                      task=_square, poll_s=0.05)
            status = rpc(server.address, "status")
        assert out == execute_points(specs, jobs=1, task=_square)
        assert status["done"] is True
        assert status["stats"]["points_completed"] == 11
        assert status["stats"]["workers_lost"] == 0

    def test_simulation_points_are_byte_identical_to_serial(self, tmp_path):
        specs = [
            {"family": "bcast", "algorithm": "tree-shaddr", "x": x,
             "dims": (2, 2, 1), "mode": "QUAD", "iters": 1}
            for x in (2048, 4096, 8192)
        ]
        serial = execute_points(specs, jobs=1)
        with _server(tmp_path, chunk_size=1) as server:
            _worker_thread(server.address, worker_id="sim")
            farmed = farm_execute_points(specs, farm=server.address,
                                         poll_s=0.05)
        for mine, theirs in zip(farmed, serial):
            assert pickle.dumps(mine, protocol=4) == \
                pickle.dumps(theirs, protocol=4)

    def test_env_routing_reaches_the_farm(self, tmp_path, monkeypatch):
        specs = _specs(4)
        with _server(tmp_path, chunk_size=2) as server:
            _worker_thread(server.address, worker_id="env")
            monkeypatch.setenv("REPRO_FARM", server.address)
            monkeypatch.setenv("REPRO_FARM_CHUNK", "2")
            out = execute_points(specs, task=_square)
        assert out == [0, 1, 4, 9]

    def test_on_error_return_yields_point_failures(self, tmp_path):
        with _server(tmp_path, chunk_size=1) as server:
            _worker_thread(server.address, worker_id="w")
            out = farm_execute_points(
                _specs(9), farm=server.address, task=_fails_on_seven,
                on_error="return", poll_s=0.05,
            )
        assert out[:7] == [x ** 2 for x in range(7)]
        assert isinstance(out[7], PointFailure)
        assert out[7].spec == {"x": 7}
        assert "unlucky point 7" in out[7].traceback
        assert out[8] == 64

    def test_on_error_raise_reruns_serially_with_worker_traceback(
            self, tmp_path):
        with _server(tmp_path, chunk_size=1) as server:
            _worker_thread(server.address, worker_id="w")
            with pytest.raises(WorkerPointError) as excinfo:
                farm_execute_points(
                    [{"x": 7}, {"x": 2}], farm=server.address,
                    task=_fails_on_seven, poll_s=0.05,
                )
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "unlucky point 7" in excinfo.value.worker_traceback


# -- leases, retries, quarantine -----------------------------------------

class TestLeases:
    def test_expired_lease_is_requeued_and_worker_counted_lost(
            self, tmp_path):
        with _server(tmp_path, lease_s=0.15, chunk_size=4) as server:
            _submit(server, _specs(4), chunk_size=4)
            grant = rpc(server.address, "lease", worker="doomed")
            assert grant["chunk"] == 0 and len(grant["points"]) == 4
            # Abandon the lease; the next lease request reaps it and
            # (after the backoff) re-grants the same chunk.
            deadline = time.monotonic() + 10.0
            while True:
                regrant = rpc(server.address, "lease", worker="heir")
                if "chunk" in regrant:
                    break
                assert time.monotonic() < deadline
                time.sleep(min(regrant["wait"], 0.05))
            assert regrant["chunk"] == 0
            status = rpc(server.address, "status")
        assert status["stats"]["leases_expired"] == 1
        assert status["stats"]["chunks_retried"] == 1
        assert status["stats"]["workers_lost"] == 1
        assert status["leased"][0]["worker"] == "heir"

    def test_heartbeat_keeps_a_lease_alive(self, tmp_path):
        with _server(tmp_path, lease_s=0.3, chunk_size=2) as server:
            _submit(server, _specs(2), chunk_size=2)
            grant = rpc(server.address, "lease", worker="beater")
            for _ in range(4):
                time.sleep(0.15)
                beat = rpc(server.address, "heartbeat", worker="beater",
                           chunk=grant["chunk"])
                assert beat["ok"] is True
            status = rpc(server.address, "status")
            assert status["stats"]["leases_expired"] == 0
            # A stale heartbeat (wrong worker) is refused.
            assert rpc(server.address, "heartbeat", worker="imposter",
                       chunk=grant["chunk"])["ok"] is False

    def test_poison_chunk_is_quarantined_after_retry_budget(self, tmp_path):
        with _server(tmp_path, chunk_size=1) as server:
            _worker_thread(server.address, worker_id="w")
            out = farm_execute_points(
                [{"x": 1}, {"x": 2}], farm=server.address,
                task=_always_fails, on_error="return", poll_s=0.05,
            )
            status = rpc(server.address, "status")
        assert all(isinstance(p, PointFailure) for p in out)
        assert all("poison point" in p.traceback for p in out)
        assert status["stats"]["chunks_quarantined"] == 2
        # Every retry ran: attempts reach the budget before quarantine.
        assert status["stats"]["chunks_retried"] == \
            2 * (FAST_RETRY.max_attempts - 1)

    def test_duplicate_completion_is_discarded(self, tmp_path):
        with _server(tmp_path, chunk_size=2) as server:
            _submit(server, _specs(2), chunk_size=2)
            grant = rpc(server.address, "lease", worker="slow")
            outcomes = [(i, "ok", spec["x"] ** 2)
                        for i, spec in grant["points"]]
            first = rpc(server.address, "complete", worker="slow",
                        chunk=grant["chunk"], outcomes=outcomes)
            assert first == {"accepted": 2, "duplicates": 0,
                             "requeued": False}
            again = rpc(server.address, "complete", worker="slower",
                        chunk=grant["chunk"], outcomes=outcomes)
            assert again["duplicates"] == 2 and again["accepted"] == 0
            status = rpc(server.address, "status")
        assert status["stats"]["duplicate_completions"] == 2
        assert status["stats"]["points_completed"] == 2
        assert status["stats"]["digest_mismatches"] == 0

    def test_stale_error_completion_does_not_evict_lease(self, tmp_path):
        """Only the lease holder settles the lease and spends retries."""
        with _server(tmp_path, chunk_size=2) as server:
            _submit(server, _specs(2), chunk_size=2)
            grant = rpc(server.address, "lease", worker="holder")
            stale = rpc(server.address, "complete", worker="stale",
                        chunk=grant["chunk"],
                        outcomes=[(0, "error", "Boom: late loser")])
            assert stale["requeued"] is False
            status = rpc(server.address, "status")
            assert status["leased"][grant["chunk"]]["worker"] == "holder"
            assert status["stats"]["chunks_retried"] == 0
            assert status["stats"]["chunks_quarantined"] == 0
            # The holder's honest completion still lands normally.
            done = rpc(server.address, "complete", worker="holder",
                       chunk=grant["chunk"],
                       outcomes=[(i, "ok", spec["x"] ** 2)
                                 for i, spec in grant["points"]])
            assert done == {"accepted": 2, "duplicates": 0,
                            "requeued": False}

    def test_lease_expiry_quarantine_is_never_rerun_serially(self, tmp_path):
        """A point that kept expiring its lease may be a genuine hang:
        the driver must raise, not re-run it in-process."""
        del _RUN_LOG[:]
        specs = _specs(1)
        with _server(tmp_path, lease_s=0.1, chunk_size=1) as server:
            _submit(server, specs, task="square_logged", chunk_size=1)
            deadline = time.monotonic() + 20.0
            while rpc(server.address, "status")["quarantined"] < 1:
                assert time.monotonic() < deadline
                grant = rpc(server.address, "lease", worker="ghost")
                if "chunk" in grant:
                    time.sleep(0.12)  # wedge: hold the lease past expiry
                else:
                    time.sleep(min(float(grant.get("wait", 0.05)), 0.05))
            with pytest.raises(WorkerPointError) as excinfo:
                farm_execute_points(specs, farm=server.address,
                                    task=_square_logged, poll_s=0.05,
                                    reconnect=FAST_RECONNECT)
        assert "FarmLeaseExpired" in excinfo.value.worker_traceback
        assert excinfo.value.index == 0
        assert _RUN_LOG == []  # never computed by the driver

    def test_mismatched_duplicate_counts_as_digest_mismatch(self, tmp_path):
        with _server(tmp_path, chunk_size=1) as server:
            _submit(server, _specs(1), chunk_size=1)
            grant = rpc(server.address, "lease", worker="honest")
            rpc(server.address, "complete", worker="honest",
                chunk=grant["chunk"], outcomes=[(0, "ok", 0)])
            rpc(server.address, "complete", worker="liar",
                chunk=grant["chunk"], outcomes=[(0, "ok", 999)])
            status = rpc(server.address, "status")
            payload = rpc(server.address, "fetch")
        assert status["stats"]["digest_mismatches"] == 1
        # First completion wins; the liar's value never lands.
        (index, state, data), = payload["results"]
        assert pickle.loads(data) == 0


# -- progress journal ----------------------------------------------------

class TestJournal:
    def test_missing_journal_loads_empty(self, tmp_path):
        state = ProgressJournal.load(str(tmp_path / "absent.jsonl"))
        assert state == JournalState()

    def test_torn_tail_is_detected_and_dropped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = ProgressJournal(path)
        for index in range(3):
            data = pickle.dumps(index * 10, protocol=4)
            journal.append({
                "kind": "point", "index": index,
                "digest": hashlib.sha256(data).hexdigest(),
                "data": base64.b64encode(data).decode(),
            })
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "point", "index": 3, "dig')  # torn write
        state = ProgressJournal.load(path)
        assert sorted(state.results) == [0, 1, 2]
        assert state.torn_records == 1

    def test_digest_mismatch_ends_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        good = pickle.dumps(1, protocol=4)
        digest = hashlib.sha256(good).hexdigest()
        encoded = base64.b64encode(good).decode()
        lines = [
            {"kind": "point", "index": 0, "digest": digest,
             "data": encoded},
            # bit-rotted record: digest does not match the payload
            {"kind": "point", "index": 1, "digest": "0" * 64,
             "data": encoded},
            {"kind": "point", "index": 2, "digest": digest,
             "data": encoded},
        ]
        with open(path, "w") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        state = ProgressJournal.load(path)
        # Replay stops at the corrupt record: later lines are untrusted.
        assert sorted(state.results) == [0]
        assert state.torn_records == 1

    def test_late_completion_beats_quarantine_on_replay(self, tmp_path):
        """A 'point' record un-quarantines its index, mirroring the live
        server — an index must never load into both maps."""
        path = str(tmp_path / "j.jsonl")
        journal = ProgressJournal(path)
        journal.append({"kind": "quarantine", "chunk": 0,
                        "indices": [0, 1],
                        "traceback": "FarmLeaseExpired: ghost"})
        data = pickle.dumps(0, protocol=4)
        journal.append({
            "kind": "point", "index": 0,
            "digest": hashlib.sha256(data).hexdigest(),
            "data": base64.b64encode(data).decode(),
        })
        journal.close()
        state = ProgressJournal.load(path)
        assert sorted(state.results) == [0]
        assert sorted(state.failures) == [1]

    def test_newline_less_tail_is_torn_even_if_it_parses(self, tmp_path):
        """Only ``record + "\\n"`` is written atomically: a final line
        missing its newline was cut short, however complete it looks."""
        path = str(tmp_path / "j.jsonl")
        journal = ProgressJournal(path)
        data = pickle.dumps(5, protocol=4)
        record = {
            "kind": "point", "index": 0,
            "digest": hashlib.sha256(data).hexdigest(),
            "data": base64.b64encode(data).decode(),
        }
        journal.append(record)
        journal.close()
        trusted = os.path.getsize(path)
        with open(path, "a") as handle:  # parseable, but no newline
            handle.write(json.dumps({**record, "index": 1}))
        state = ProgressJournal.load(path)
        assert sorted(state.results) == [0]
        assert state.torn_records == 1
        assert state.valid_bytes == trusted
        # repair() drops exactly the untrusted tail.
        journal.repair(state.valid_bytes)
        assert os.path.getsize(path) == trusted

    def test_append_never_merges_into_a_torn_line(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as handle:
            handle.write('{"kind": "point", "index": 0, "dig')  # torn
        journal = ProgressJournal(path)
        journal.append({"kind": "resume", "at": "now", "git_rev": "x"})
        journal.close()
        state = ProgressJournal.load(path)
        # The torn fragment stays isolated on its own line; the fresh
        # record after it is... untrusted by replay-order rules, so the
        # guarantee here is just that the file has no merged lines.
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert lines[0] == '{"kind": "point", "index": 0, "dig'
        assert json.loads(lines[1]) == {"kind": "resume", "at": "now",
                                        "git_rev": "x"}
        assert state.torn_records == 1

    def test_fresh_server_refuses_a_used_journal_without_resume(
            self, tmp_path):
        with _server(tmp_path) as server:
            _submit(server, _specs(2))
            path = server.journal_path
        with pytest.raises(FarmError, match="--resume"):
            FarmServer(port=0, journal_path=path)


# -- crash-resumable campaigns -------------------------------------------

class TestResume:
    def test_resume_never_reruns_a_journaled_point(self, tmp_path):
        del _RUN_LOG[:]
        specs = _specs(8)
        path = str(tmp_path / "journal.jsonl")
        server = _server(tmp_path, journal_path=path, chunk_size=1)
        _submit(server, specs, task="square_logged", chunk_size=1)
        # A worker computes exactly 3 chunks, then the server "crashes".
        FarmWorker(server.address, worker_id="early",
                   reconnect=FAST_RECONNECT).run(max_chunks=3)
        server.stop()
        assert sorted(_RUN_LOG) == [0, 1, 2]

        resumed = _server(tmp_path, journal_path=path, chunk_size=1,
                          resume=True)
        _worker_thread(resumed.address, worker_id="late")
        out = farm_execute_points(specs, farm=resumed.address,
                                  task=_square_logged, poll_s=0.05,
                                  reconnect=FAST_RECONNECT)
        status = rpc(resumed.address, "status")
        resumed.stop()
        assert out == [x ** 2 for x in range(8)]
        # Journaled points 0-2 were served from the journal, not re-run.
        assert sorted(_RUN_LOG) == list(range(8))
        assert status["stats"]["resumes"] == 1
        assert status["stats"]["points_completed"] == 8

    def test_resume_survives_a_torn_tail(self, tmp_path):
        specs = _specs(6)
        path = str(tmp_path / "journal.jsonl")
        server = _server(tmp_path, journal_path=path, chunk_size=1)
        _submit(server, specs, chunk_size=1)
        FarmWorker(server.address, worker_id="w",
                   reconnect=FAST_RECONNECT).run(max_chunks=4)
        server.stop()
        # SIGKILL mid-append: the last journal line is half-written.
        with open(path, "rb+") as handle:
            handle.seek(-17, 2)
            handle.truncate()
        resumed = _server(tmp_path, journal_path=path, chunk_size=1,
                          resume=True)
        _worker_thread(resumed.address, worker_id="late")
        out = farm_execute_points(specs, farm=resumed.address,
                                  task=_square, poll_s=0.05,
                                  reconnect=FAST_RECONNECT)
        status = rpc(resumed.address, "status")
        resumed.stop()
        assert out == [x ** 2 for x in range(6)]
        assert status["stats"]["torn_records"] == 1
        assert status["stats"]["resumes"] == 1

    def test_resume_after_quarantine_then_late_completion(self, tmp_path):
        """Regression: replaying quarantine-then-late-completion used to
        leave the index in *both* maps, so the resumed server declared
        the campaign done one point early and crashed fetch with an
        internal KeyError on the genuinely-uncovered index."""
        specs = _specs(3)
        path = str(tmp_path / "journal.jsonl")
        server = _server(tmp_path, journal_path=path, chunk_size=2)
        _submit(server, specs, chunk_size=2)  # chunk0={0,1}, chunk1={2}
        # Drive chunk 0 to quarantine through honest error completions.
        deadline = time.monotonic() + 20.0
        parked = False
        while rpc(server.address, "status")["quarantined"] < 2:
            assert time.monotonic() < deadline
            grant = rpc(server.address, "lease", worker="flaky")
            if grant.get("chunk") == 0:
                rpc(server.address, "complete", worker="flaky", chunk=0,
                    outcomes=[(i, "error", "Boom: flaky") for i, _ in
                              grant["points"]])
            elif "chunk" in grant:
                parked = True  # chunk 1 stays leased, never completes
            else:
                time.sleep(min(float(grant.get("wait", 0.05)), 0.05))
        assert parked
        # A late honest completion covers point 0 only: the journal now
        # holds quarantine([0, 1]) followed by point(0).
        rpc(server.address, "complete", worker="late", chunk=0,
            outcomes=[(0, "ok", 0)])
        server.stop()

        resumed = _server(tmp_path, journal_path=path, chunk_size=1,
                          resume=True)
        # Not done: point 2 is still uncovered after the replay.
        assert rpc(resumed.address, "status")["done"] is False
        _worker_thread(resumed.address, worker_id="drain")
        out = farm_execute_points(specs, farm=resumed.address,
                                  task=_square, on_error="return",
                                  poll_s=0.05, reconnect=FAST_RECONNECT)
        status = rpc(resumed.address, "status")
        resumed.stop()
        assert out[0] == 0 and out[2] == 4
        assert isinstance(out[1], PointFailure)  # still quarantined
        assert status["quarantined"] == 1
        assert status["stats"]["points_completed"] == 2

    def test_records_after_a_resume_survive_a_second_resume(self, tmp_path):
        """Regression: resuming over a torn tail used to append the
        resume marker onto the partial line, so a *second* resume lost
        every record journaled after the first one."""
        del _RUN_LOG[:]
        specs = _specs(6)
        path = str(tmp_path / "journal.jsonl")
        server = _server(tmp_path, journal_path=path, chunk_size=1)
        _submit(server, specs, task="square_logged", chunk_size=1)
        FarmWorker(server.address, worker_id="w0",
                   reconnect=FAST_RECONNECT).run(max_chunks=2)
        server.stop()
        with open(path, "rb+") as handle:  # crash mid-write of point 1
            handle.seek(-9, 2)
            handle.truncate()
        first = _server(tmp_path, journal_path=path, chunk_size=1,
                        resume=True)
        FarmWorker(first.address, worker_id="w1",
                   reconnect=FAST_RECONNECT).run(max_chunks=2)
        first.stop()
        # The second replay keeps everything the first resume journaled.
        state = ProgressJournal.load(path)
        assert state.resumes == 1
        assert sorted(state.results) == [0, 1, 2]
        assert state.torn_records == 0  # repaired before the re-appends

        final = _server(tmp_path, journal_path=path, chunk_size=1,
                        resume=True)
        _worker_thread(final.address, worker_id="w2")
        out = farm_execute_points(specs, farm=final.address,
                                  task=_square_logged, poll_s=0.05,
                                  reconnect=FAST_RECONNECT)
        status = rpc(final.address, "status")
        final.stop()
        assert out == [x ** 2 for x in range(6)]
        assert status["stats"]["resumes"] == 2
        assert status["stats"]["points_completed"] == 6
        # Point 0 was journaled before the crash and never re-ran; only
        # torn point 1 ran twice.
        assert _RUN_LOG.count(0) == 1
        assert _RUN_LOG.count(1) == 2

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_seeded_chaos_converges_to_the_serial_answer(
            self, tmp_path, seed):
        """Property test: kills + duplicates + truncation stay correct.

        A seeded storm — workers abandoning leases mid-campaign, a
        duplicated chunk completion, a server kill with a truncated
        journal tail, then a resume — must still merge byte-identical
        to the serial run, with no point both completed and quarantined.
        """
        rng = random.Random(seed)
        specs = _specs(rng.randrange(8, 16))
        serial = execute_points(specs, jobs=1, task=_square)
        path = str(tmp_path / "journal.jsonl")

        server = _server(tmp_path, journal_path=path, lease_s=0.2,
                         chunk_size=rng.choice([1, 2, 3]))
        _submit(server, specs, chunk_size=rng.choice([1, 2, 3]))
        # Phase 1: flaky workers that die (abandon leases) after a few
        # chunks; one survivor also re-sends a duplicate completion.
        for index in range(rng.randrange(1, 4)):
            FarmWorker(server.address, worker_id=f"flaky{index}",
                       reconnect=FAST_RECONNECT).run(
                max_chunks=rng.randrange(1, 3))
        grant = rpc(server.address, "lease", worker="dup")
        if "chunk" in grant:
            outcomes = [(i, "ok", spec["x"] ** 2)
                        for i, spec in grant["points"]]
            rpc(server.address, "complete", worker="dup",
                chunk=grant["chunk"], outcomes=outcomes)
            rpc(server.address, "complete", worker="dup",
                chunk=grant["chunk"], outcomes=outcomes)
        # A worker that leases and dies mid-chunk: never completes.
        rpc(server.address, "lease", worker="abandoner")
        # Phase 2: kill the server; maybe tear the journal's last line.
        server.stop()
        if rng.random() < 0.5:
            with open(path, "rb+") as handle:
                size = handle.seek(0, 2)
                handle.truncate(size - rng.randrange(1, 9))
        # Phase 3: resume and drain with fresh workers.
        resumed = _server(tmp_path, journal_path=path, lease_s=1.0,
                          chunk_size=1, resume=True)
        for index in range(2):
            _worker_thread(resumed.address, worker_id=f"drain{index}")
        out = farm_execute_points(specs, farm=resumed.address,
                                  task=_square, poll_s=0.05,
                                  reconnect=FAST_RECONNECT)
        status = rpc(resumed.address, "status")
        resumed.stop()

        assert out == serial
        assert status["stats"]["resumes"] == 1
        assert status["stats"]["points_completed"] == len(specs)
        assert status["quarantined"] == 0


# -- graceful degradation ------------------------------------------------

class TestDegradation:
    def test_unreachable_server_raises_without_fallback(self):
        with pytest.raises(FarmUnreachableError):
            farm_execute_points(_specs(2), farm="127.0.0.1:9",
                                task=_square, reconnect=FAST_RECONNECT)

    def test_local_fallback_runs_the_local_executor(self, capsys):
        out = farm_execute_points(
            _specs(3), farm="127.0.0.1:9", task=_square,
            reconnect=FAST_RECONNECT, local_fallback=True, jobs=1,
        )
        assert out == [0, 1, 4]
        assert "falling back" in capsys.readouterr().err

    def test_env_fallback_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FARM_FALLBACK", "1")
        out = farm_execute_points(_specs(2), farm="127.0.0.1:9",
                                  task=_square, reconnect=FAST_RECONNECT,
                                  jobs=1)
        assert out == [0, 1]

    def test_driver_stall_timeout_raises_instead_of_polling_forever(
            self, tmp_path, monkeypatch):
        """A campaign making no progress (here: no workers at all) must
        not hold the driver hostage when a timeout was requested."""
        with _server(tmp_path, chunk_size=1) as server:
            with pytest.raises(FarmError, match="no farm progress"):
                farm_execute_points(_specs(2), farm=server.address,
                                    task=_square, poll_s=0.02,
                                    timeout_s=0.2,
                                    reconnect=FAST_RECONNECT)
            # The REPRO_CHUNK_TIMEOUT_S intent reaches the farm path too.
            monkeypatch.setenv("REPRO_CHUNK_TIMEOUT_S", "0.2")
            with pytest.raises(FarmError, match="no farm progress"):
                farm_execute_points(_specs(2), farm=server.address,
                                    task=_square, poll_s=0.02,
                                    reconnect=FAST_RECONNECT)
            # The campaign survives the driver's exit: a worker can
            # still drain it and a patient driver gets the results.
            monkeypatch.delenv("REPRO_CHUNK_TIMEOUT_S")
            _worker_thread(server.address, worker_id="late")
            out = farm_execute_points(_specs(2), farm=server.address,
                                      task=_square, poll_s=0.02,
                                      reconnect=FAST_RECONNECT)
        assert out == [0, 1]

    def test_nonloopback_bind_requires_explicit_authkey(
            self, tmp_path, monkeypatch):
        """The authkey is the pickle protocol's only trust boundary, and
        the in-repo default is public: wildcard binds must refuse it."""
        monkeypatch.delenv("REPRO_FARM_AUTHKEY", raising=False)
        server = FarmServer(host="0.0.0.0", port=0,
                            journal_path=str(tmp_path / "j.jsonl"))
        with pytest.raises(FarmError, match="REPRO_FARM_AUTHKEY"):
            server.start()
        # An explicit shared secret unlocks the non-loopback bind.
        monkeypatch.setenv("REPRO_FARM_AUTHKEY", "a-real-secret")
        server = FarmServer(host="0.0.0.0", port=0,
                            journal_path=str(tmp_path / "j2.jsonl"))
        try:
            server.start()
            _, port = parse_address(server.address)
            assert rpc(f"127.0.0.1:{port}", "status")["total"] == 0
        finally:
            server.stop()

    def test_worker_rides_out_a_server_restart(self, tmp_path):
        specs = _specs(6)
        path = str(tmp_path / "journal.jsonl")
        server = _server(tmp_path, journal_path=path, chunk_size=1)
        _submit(server, specs, chunk_size=1)
        address = server.address
        host, port = parse_address(address)
        # A patient worker keeps retrying while the server is away.
        patient = RetryPolicy(max_attempts=40, base_backoff_us=5e4,
                              backoff_factor=1.5, max_backoff_us=2e5)
        worker = FarmWorker(address, worker_id="patient",
                            reconnect=patient)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        time.sleep(0.3)
        server.stop()
        time.sleep(0.3)  # worker RPCs fail and back off meanwhile
        resumed = FarmServer(host=host, port=port, journal_path=path,
                             chunk_size=1, resume=True,
                             chunk_retry=FAST_RETRY)
        resumed.start()
        out = farm_execute_points(specs, farm=resumed.address,
                                  task=_square, poll_s=0.05,
                                  reconnect=FAST_RECONNECT)
        resumed.stop()
        thread.join(timeout=10.0)
        assert out == [x ** 2 for x in range(6)]
        assert not thread.is_alive()


# -- robustness rollups (BENCH entry) ------------------------------------

class TestBenchEntry:
    def test_rollups_and_entry_shape(self, tmp_path):
        with _server(tmp_path, chunk_size=2) as server:
            _worker_thread(server.address, worker_id="w")
            farm_execute_points(_specs(4), farm=server.address,
                                task=_square, poll_s=0.05)
            status = rpc(server.address, "status")
        rollups = farm_rollups(status)
        assert rollups["total_points"] == 4.0
        assert rollups["points_completed"] == 4.0
        assert rollups["workers_lost"] == 0.0

        path = str(tmp_path / "BENCH_robustness.json")
        with open(path, "w") as handle:
            json.dump({"summary": {"total_runs": 1}}, handle)
        document = record_farm_bench_entry(path, "farm-test", status)
        # Existing campaign content is preserved alongside the entry.
        assert document["summary"] == {"total_runs": 1}
        entry = document["entries"]["farm-test"]
        assert entry["solver"] == "farm"
        points = entry["sweeps"]["farm-robustness"]["points"]
        assert [p["metric"] for p in points][:2] == \
            ["total_points", "points_completed"]
        with open(path) as handle:
            assert json.load(handle) == document

    def test_entry_gates_through_compare_bench(self, tmp_path):
        from repro.telemetry.manifest import compare_bench

        with _server(tmp_path, chunk_size=2) as server:
            _worker_thread(server.address, worker_id="w")
            farm_execute_points(_specs(4), farm=server.address,
                                task=_square, poll_s=0.05)
            status = rpc(server.address, "status")
        path = str(tmp_path / "bench.json")
        record_farm_bench_entry(path, "base", status)
        record_farm_bench_entry(path, "same", status)
        status["stats"]["workers_lost"] = 3
        record_farm_bench_entry(path, "drifted", status)
        with open(path) as handle:
            bench = json.load(handle)
        assert compare_bench(bench, "base", "same") == []
        drifts = compare_bench(bench, "base", "drifted")
        assert any("farm-robustness" in line for line in drifts)


# -- runtime trace spans (docs/observability.md) -------------------------

def _submit_traced(server, specs, trace, task="square"):
    manifest = CampaignManifest.build(task, specs)
    return rpc(server.address, "submit", manifest=manifest.to_dict(),
               specs=specs, task=task, chunk_size=1, trace=trace)


class TestRuntimeSpans:
    def test_each_lease_mints_a_fresh_span_under_one_trace(self, tmp_path):
        with _server(tmp_path, chunk_size=1) as server:
            trace = mint_trace()
            _submit_traced(server, _specs(2), trace)
            first = rpc(server.address, "lease", worker="w0")
            second = rpc(server.address, "lease", worker="w1")
            for grant in (first, second):
                assert grant["trace"]["trace_id"] == trace["trace_id"]
                assert grant["trace"]["parent_span"] == trace["span_id"]
            assert first["trace"]["span_id"] != second["trace"]["span_id"]

    def test_spans_survive_crash_and_releases_get_fresh_span_ids(
            self, tmp_path):
        """Satellite invariant: chunk spans are journaled like campaign
        events, so a trace assembled after a SIGKILL + ``--resume``
        still shows pre-crash chunks, and a chunk re-leased after the
        resume reports a *fresh* span id under the *same* trace id."""
        specs = _specs(3)
        path = str(tmp_path / "journal.jsonl")
        server = _server(tmp_path, journal_path=path, chunk_size=1)
        trace = mint_trace()
        _submit_traced(server, specs, trace)
        # One worker ships one chunk span; a second chunk is leased but
        # never completed; then the server "crashes" mid-campaign.
        FarmWorker(server.address, worker_id="early",
                   reconnect=FAST_RECONNECT).run(max_chunks=1)
        parked = rpc(server.address, "lease", worker="parked")
        parked_span = parked["trace"]["span_id"]
        server.stop()

        resumed = _server(tmp_path, journal_path=path, chunk_size=1,
                          resume=True)
        try:
            replayed = rpc(resumed.address, "trace")
            # The pre-crash span and the driver's trace context both
            # survived the journal replay.
            assert replayed["trace"] == trace
            assert replayed["count"] == 1
            (span0,) = replayed["spans"]
            assert span0["trace_id"] == trace["trace_id"]
            assert span0["parent_id"] == trace["span_id"]
            assert span0["name"].startswith("farm.chunk.")
            assert span0["component"] == "farm.worker"
            assert span0["attrs"]["worker"] == "early"
            assert span0["end_s"] >= span0["start_s"]
            # Re-leases (including the abandoned chunk) chain fresh span
            # ids under the original trace.
            seen = {span0["span_id"], parked_span}
            while True:
                grant = rpc(resumed.address, "lease", worker="late")
                if "chunk" not in grant:
                    break
                assert grant["trace"]["trace_id"] == trace["trace_id"]
                assert grant["trace"]["span_id"] not in seen
                seen.add(grant["trace"]["span_id"])
                index, spec = grant["points"][0]
                rpc(resumed.address, "complete", worker="late",
                    chunk=grant["chunk"],
                    outcomes=[(index, "ok", spec["x"] ** 2)])
            # fetch hands the journaled spans back beside the results
            # (manual completions above shipped none).
            payload = rpc(resumed.address, "fetch")
            assert payload["done"] is True
            assert [item["span_id"] for item in payload["spans"]] == (
                [span0["span_id"]]
            )
        finally:
            resumed.stop()

    def test_kill_switch_keeps_spans_off_the_wire(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_RUNTIME_LOG, "0")
        with _server(tmp_path, chunk_size=1) as server:
            _submit_traced(server, _specs(1), mint_trace())
            FarmWorker(server.address, worker_id="w",
                       reconnect=FAST_RECONNECT).run(max_chunks=1)
            assert rpc(server.address, "trace")["count"] == 0
