"""Unit, threaded, and property tests for MessageCounter/CompletionCounter."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import CompletionCounter, MessageCounter


def make_counter(size=256):
    return MessageCounter(np.zeros(size, dtype=np.uint8))


class TestMessageCounterBasics:
    def test_initial_watermark_zero(self):
        assert make_counter().arrived == 0

    def test_append_advances_watermark(self):
        mc = make_counter()
        assert mc.append(b"abc") == 3
        assert mc.arrived == 3
        assert bytes(mc.buffer[:3]) == b"abc"

    def test_append_after_watermark(self):
        mc = make_counter()
        mc.append(b"ab")
        mc.append(b"cd")
        assert bytes(mc.buffer[:4]) == b"abcd"

    def test_overflow_rejected(self):
        mc = make_counter(4)
        mc.append(b"abc")
        with pytest.raises(ValueError):
            mc.append(b"de")

    def test_wait_for_already_met(self):
        mc = make_counter()
        mc.append(b"abcd")
        assert mc.wait_for(2) == 4

    def test_wait_for_timeout(self):
        mc = make_counter()
        with pytest.raises(TimeoutError):
            mc.wait_for(1, timeout=0.05)

    def test_wait_threshold_beyond_buffer_rejected(self):
        mc = make_counter(4)
        with pytest.raises(ValueError):
            mc.wait_for(5)

    def test_reset(self):
        mc = make_counter()
        mc.append(b"xy")
        mc.reset()
        assert mc.arrived == 0

    def test_requires_uint8_1d(self):
        with pytest.raises(ValueError):
            MessageCounter(np.zeros(4, dtype=np.float64))
        with pytest.raises(ValueError):
            MessageCounter(np.zeros((2, 2), dtype=np.uint8))

    def test_numpy_append(self):
        mc = make_counter()
        mc.append(np.arange(4, dtype=np.uint8))
        assert bytes(mc.buffer[:4]) == bytes([0, 1, 2, 3])


class TestMessageCounterThreaded:
    def test_pipelined_consumers_see_full_stream(self):
        data = bytes(range(256)) * 8  # 2048 bytes
        mc = MessageCounter(np.zeros(len(data), dtype=np.uint8))
        cc = CompletionCounter(3)
        errors = []

        def reader():
            try:
                local = 0
                acc = bytearray()
                while local < len(data):
                    watermark = mc.wait_for(local + 1, timeout=10)
                    acc += bytes(mc.buffer[local:watermark])
                    local = watermark
                assert bytes(acc) == data
                cc.signal()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for off in range(0, len(data), 64):
            mc.append(data[off:off + 64])
        cc.wait(timeout=10)
        for t in threads:
            t.join()
        assert not errors


class TestCompletionCounter:
    def test_wait_after_all_signals(self):
        cc = CompletionCounter(2)
        cc.signal()
        cc.signal()
        cc.wait(timeout=1)
        assert cc.count == 2

    def test_zero_expected_returns_immediately(self):
        CompletionCounter(0).wait(timeout=0.1)

    def test_over_signal_rejected(self):
        cc = CompletionCounter(1)
        cc.signal()
        with pytest.raises(RuntimeError):
            cc.signal()

    def test_timeout(self):
        cc = CompletionCounter(1)
        with pytest.raises(TimeoutError):
            cc.wait(timeout=0.05)

    def test_negative_expected_rejected(self):
        with pytest.raises(ValueError):
            CompletionCounter(-1)


class TestMessageCounterUnderStalls:
    """Overflow edge cases with a stalled publisher or parked readers."""

    def test_overflow_at_boundary_leaves_watermark_intact(self):
        mc = make_counter(8)
        mc.append(b"abcdefgh")  # exactly full: fine
        with pytest.raises(ValueError):
            mc.append(b"i")  # one past the end
        # The failed append must not have moved the watermark or the data.
        assert mc.arrived == 8
        assert bytes(mc.buffer[:8]) == b"abcdefgh"

    def test_overflow_while_readers_parked(self):
        import time

        data = b"x" * 64
        mc = MessageCounter(np.zeros(64, dtype=np.uint8))
        seen = []
        errors = []

        def reader():
            try:
                seen.append(mc.wait_for(64, timeout=10))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        t = threading.Thread(target=reader)
        t.start()
        mc.append(data[:32])
        time.sleep(0.02)  # publisher stalls mid-stream, reader stays parked
        with pytest.raises(ValueError):
            mc.append(b"y" * 64)  # would overflow past capacity
        mc.append(data[32:])  # stall clears; the valid tail still lands
        t.join()
        assert not errors
        assert seen == [64]
        assert bytes(mc.buffer) == data

    def test_stalled_publisher_delays_but_preserves_stream(self):
        import time

        data = bytes(range(200))
        mc = MessageCounter(np.zeros(len(data), dtype=np.uint8))
        acc = bytearray()
        errors = []

        def reader():
            try:
                local = 0
                while local < len(data):
                    watermark = mc.wait_for(local + 1, timeout=10)
                    acc.extend(bytes(mc.buffer[local:watermark]))
                    local = watermark
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        t = threading.Thread(target=reader)
        t.start()
        for off in range(0, len(data), 50):
            if off == 100:
                time.sleep(0.05)  # mid-stream publisher stall
            mc.append(data[off:off + 50])
        t.join()
        assert not errors
        # Already-published bytes stayed readable through the stall and
        # the assembled stream is bit-exact.
        assert bytes(acc) == data


class TestMessageCounterProperties:
    @given(
        chunks=st.lists(st.binary(min_size=0, max_size=32), max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_watermark_equals_total_and_content_matches(self, chunks):
        total = sum(len(c) for c in chunks)
        mc = MessageCounter(np.zeros(max(total, 1), dtype=np.uint8))
        for c in chunks:
            mc.append(c)
        assert mc.arrived == total
        assert bytes(mc.buffer[:total]) == b"".join(chunks)

    @given(st.lists(st.integers(1, 16), min_size=1, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_watermark_monotone(self, sizes):
        mc = MessageCounter(np.zeros(sum(sizes), dtype=np.uint8))
        last = 0
        for s in sizes:
            new = mc.append(b"\x01" * s)
            assert new == last + s
            last = new
