"""Unit and threaded stress tests for AtomicCounter."""

import threading

import pytest

from repro.structures import AtomicCounter


class TestAtomicCounterBasics:
    def test_initial_value(self):
        assert AtomicCounter(5).load() == 5

    def test_fetch_and_increment_returns_previous(self):
        c = AtomicCounter(10)
        assert c.fetch_and_increment() == 10
        assert c.load() == 11

    def test_fetch_and_increment_amount(self):
        c = AtomicCounter()
        assert c.fetch_and_increment(7) == 0
        assert c.load() == 7

    def test_fetch_and_decrement(self):
        c = AtomicCounter(3)
        assert c.fetch_and_decrement() == 3
        assert c.load() == 2

    def test_add_returns_new(self):
        c = AtomicCounter(1)
        assert c.add(4) == 5

    def test_store(self):
        c = AtomicCounter()
        c.store(99)
        assert c.load() == 99

    def test_compare_and_swap(self):
        c = AtomicCounter(5)
        assert c.compare_and_swap(5, 10) is True
        assert c.load() == 10
        assert c.compare_and_swap(5, 20) is False
        assert c.load() == 10


class TestAtomicCounterThreaded:
    def test_unique_slot_reservation(self):
        """The paper's core requirement: no two fetch-and-increments return
        the same value (slot uniqueness, section IV-A attribute (a))."""
        c = AtomicCounter()
        results = [[] for _ in range(8)]

        def worker(i):
            for _ in range(500):
                results[i].append(c.fetch_and_increment())

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = [x for sub in results for x in sub]
        assert sorted(flat) == list(range(8 * 500))
        assert c.load() == 8 * 500

    def test_concurrent_add_no_lost_updates(self):
        c = AtomicCounter()

        def worker():
            for _ in range(1000):
                c.add(1)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.load() == 6000
