"""Property-based tests of system-wide simulator invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FlowNetwork


workload = st.lists(
    st.tuples(
        st.floats(0.0, 50.0),        # start delay
        st.floats(1.0, 10_000.0),    # nbytes
        st.integers(0, 3),           # resource index
        st.sampled_from([1.0, 2.0, 3.0]),  # weight
        st.sampled_from([None, 25.0, 80.0]),  # cap
    ),
    min_size=1,
    max_size=20,
)


def run_workload(spec):
    eng = Engine()
    net = FlowNetwork(eng)
    resources = [net.add_resource(f"r{i}", 100.0) for i in range(4)]
    finish_times = {}

    def proc(i, delay, nbytes, res, weight, cap):
        if delay:
            yield eng.timeout(delay)
        yield net.transfer({resources[res]: weight}, nbytes, cap=cap,
                           name=f"f{i}")
        finish_times[i] = eng.now

    procs = [
        eng.spawn(proc(i, *args), name=f"p{i}")
        for i, args in enumerate(spec)
    ]
    eng.run_until_processes_finish(procs)
    return eng, net, resources, finish_times


class TestFlowNetworkInvariants:
    @given(spec=workload)
    @settings(max_examples=60, deadline=None)
    def test_byte_conservation(self, spec):
        """Every requested byte is eventually delivered, exactly once."""
        _eng, net, _res, _times = run_workload(spec)
        assert net.flows_completed == len(spec)
        assert net.bytes_completed == pytest.approx(
            sum(nbytes for _d, nbytes, _r, _w, _c in spec)
        )

    @given(spec=workload)
    @settings(max_examples=60, deadline=None)
    def test_busy_integral_equals_weighted_bytes(self, spec):
        """Each resource's busy integral equals the raw bytes routed
        through it (weight x payload), independent of scheduling."""
        eng, _net, resources, _times = run_workload(spec)
        expected = [0.0] * len(resources)
        for _d, nbytes, res, weight, _cap in spec:
            expected[res] += nbytes * weight
        for resource, exp in zip(resources, expected):
            assert resource.busy_integral(eng.now) == pytest.approx(
                exp, rel=1e-6, abs=1e-3
            )

    @given(spec=workload)
    @settings(max_examples=40, deadline=None)
    def test_finish_no_earlier_than_physics_allows(self, spec):
        """No flow beats its own best case: start + nbytes / min(cap, C/w)."""
        _eng, _net, _res, times = run_workload(spec)
        for i, (delay, nbytes, _res_i, weight, cap) in enumerate(spec):
            best_rate = min(100.0 / weight, cap or float("inf"))
            assert times[i] >= delay + nbytes / best_rate - 1e-6

    @given(spec=workload)
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, spec):
        """Identical workloads give bit-identical schedules."""
        _e1, _n1, _r1, t1 = run_workload(spec)
        _e2, _n2, _r2, t2 = run_workload(spec)
        assert t1 == t2


class TestEngineTracing:
    def test_flow_events_traced(self):
        eng = Engine(trace=True)
        net = FlowNetwork(eng)
        r = net.add_resource("r", 10.0)

        def p():
            yield net.transfer({r: 1.0}, 100.0, name="demo")

        proc = eng.spawn(p())
        eng.run_until_processes_finish([proc])
        messages = [m for _t, m in eng.trace_log]
        assert any(m.startswith("flow+ demo") for m in messages)
        assert any(m.startswith("flow- demo") for m in messages)

    def test_tracing_off_by_default(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 10.0)

        def p():
            yield net.transfer({r: 1.0}, 10.0)

        proc = eng.spawn(p())
        eng.run_until_processes_finish([proc])
        assert eng.trace_log == []
