"""Pluggable network backends: registry, topologies, wire gates, chaos,
and the multi-tenant traffic harness.

Covers the backend registry and its ``@register``-time validation of
``AlgorithmInfo.network`` tags, the fat-tree / leaf-spine topology and
routing invariants (deterministic ECMP coloring, hop counts, channel
ownership via the public ``iter_channels`` / ``channels_touching`` /
``add_channel_hook`` surface), the per-network selection tables and their
:class:`UnsupportedTopologyError` semantics, chaos fault injection on a
switched fabric (LinkFlap / NodeSlowdown / fallback ladder), MachineView
sub-communicator semantics, and the seeded multi-tenant traffic
generator's determinism and contention guarantees.
"""

import json

import pytest

from repro.bench.chaos import _machine_factory, run_resilient_collective
from repro.bench.harness import run_collective
from repro.bench.traffic import (
    JOB_MENU,
    MachineView,
    draw_jobs,
    overlapping_pairs,
    run_traffic,
)
from repro.collectives import registry
from repro.collectives.registry import fallback_chain, select_protocol
from repro.hardware.fault_schedule import (
    FaultSchedule,
    LinkFlap,
    NodeSlowdown,
    WindowFault,
)
from repro.hardware.machine import Machine, Mode
from repro.hardware.network import (
    AUX_WIRES,
    UnsupportedTopologyError,
    backend_class,
    known_backends,
    known_networks,
)
from repro.msg.color import torus_colors


def fattree_machine(dims=(2, 2, 1), mode=Mode.QUAD, **params):
    return Machine(torus_dims=dims, mode=mode, network="fattree",
                   network_params=params or None)


def leafspine_machine(dims=(2, 2, 1), mode=Mode.QUAD, **params):
    return Machine(torus_dims=dims, mode=mode, network="leafspine",
                   network_params=params or None)


class TestBackendRegistry:
    def test_known_backends(self):
        assert known_backends() == ["fattree", "leafspine", "torus"]

    def test_known_networks_are_backends_plus_wires(self):
        networks = known_networks()
        for name in known_backends():
            assert name in networks
        for wire in AUX_WIRES:
            assert wire in networks

    def test_backend_class_exposes_wires_without_a_machine(self):
        assert backend_class("torus").wires == ("torus", "ptp", "tree", "gi")
        assert backend_class("fattree").wires == ("ptp", "gi")
        assert backend_class("leafspine").wires == ("ptp", "gi")

    def test_unknown_backend_is_a_topology_error(self):
        with pytest.raises(UnsupportedTopologyError):
            backend_class("hypercube")
        with pytest.raises(UnsupportedTopologyError):
            Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD,
                    network="hypercube")

    def test_register_validates_network_tag(self):
        """@register refuses an algorithm whose network tag is neither a
        backend nor a wire — typos die at class-decoration time."""

        class BadWire:
            name = "test-bad-wire"
            network = "infiniband"

        with pytest.raises(ValueError, match="not a known"):
            registry.register("bcast")(BadWire)

        class NoWire:
            name = "test-no-wire"

        with pytest.raises(ValueError, match="network"):
            registry.register("bcast")(NoWire)

    def test_every_registered_network_tag_is_known(self):
        for info in registry.iter_algorithms():
            assert info.network in known_networks(), info.name


class TestFatTreeTopology:
    def test_k_fits_node_count(self):
        from repro.hardware.fattree import _fit_k

        assert _fit_k(1) == 2
        assert _fit_k(2) == 2
        assert _fit_k(3) == 4
        assert _fit_k(16) == 4
        assert _fit_k(17) == 6
        net = fattree_machine(dims=(2, 2, 2)).network
        assert net.k == 4 and net.nnodes == 8

    def test_explicit_k_validated(self):
        net = fattree_machine(dims=(2, 2, 1), k=8).network
        assert net.k == 8 and net.radix == 4
        with pytest.raises(ValueError):
            fattree_machine(k=3)
        with pytest.raises(ValueError):
            fattree_machine(dims=(4, 4, 4), k=2)  # 2 host slots for 64

    def test_hop_distances(self):
        net = fattree_machine(dims=(4, 4, 1), k=4).network  # radix 2
        assert net.hop_distance(0, 0) == 0
        assert net.hop_distance(0, 1) == 2   # same edge switch
        assert net.hop_distance(0, 2) == 4   # same pod, other edge
        assert net.hop_distance(0, 4) == 6   # via core
        # Route length always equals the advertised hop count.
        for src in range(net.nnodes):
            for dst in range(net.nnodes):
                if src == dst:
                    continue
                keys = net.route_channel_keys(0, src, dst)
                assert len(keys) == net.hop_distance(src, dst), (src, dst)

    def test_ecmp_routes_are_deterministic_and_color_spread(self):
        net = fattree_machine(dims=(4, 4, 1), k=4).network
        # Same (color, src, dst) -> byte-identical route, every time.
        assert net.route_channel_keys(1, 0, 5) == net.route_channel_keys(
            1, 0, 5
        )
        # Distinct colors spread across the radix=2 equal-cost choices.
        routes = {tuple(net.route_channel_keys(c, 0, 5)) for c in range(2)}
        assert len(routes) == 2

    def test_channel_touches_covers_both_endpoints(self):
        net = fattree_machine(dims=(4, 4, 1), k=4).network
        for src, dst in ((0, 1), (0, 2), (0, 5), (3, 12)):
            for key in net.route_channel_keys(0, src, dst):
                assert net.channel_touches(key, src) or net.channel_touches(
                    key, dst
                ), (src, dst, key)

    def test_ring_order_is_rooted_permutation(self):
        net = fattree_machine(dims=(2, 2, 2)).network
        for color in torus_colors(3):
            ring = net.ring_order(color, 3)
            assert ring[0] == 3
            assert sorted(ring) == list(range(net.nnodes))

    def test_channels_appear_lazily_via_public_surface(self):
        machine = fattree_machine()
        net = machine.network
        assert list(net.iter_channels()) == []
        created = []
        net.add_channel_hook(lambda key, ch: created.append(key))
        net.ptp_send(0, 0, 3, 4096)
        assert created, "ptp_send created no channels"
        assert dict(net.iter_channels()), "channels not enumerable"
        assert net.channels_touching(0), "no channel touches the source"
        net.remove_channel_hook(created.append)  # absent hook: no-op


class TestLeafSpineTopology:
    def test_geometry_defaults_and_params(self):
        net = leafspine_machine(dims=(2, 2, 2)).network
        assert net.leaf_width == 4 and net.nspines == 2 and net.nleaves == 2
        net = leafspine_machine(dims=(2, 2, 2), leaf_width=2,
                                nspines=4).network
        assert net.nleaves == 4 and net.nspines == 4

    def test_hop_distances_and_route_lengths(self):
        net = leafspine_machine(dims=(2, 2, 2)).network
        assert net.hop_distance(0, 0) == 0
        assert net.hop_distance(0, 3) == 2   # same leaf
        assert net.hop_distance(0, 4) == 4   # via a spine
        for src in range(net.nnodes):
            for dst in range(net.nnodes):
                if src == dst:
                    continue
                keys = net.route_channel_keys(0, src, dst)
                assert len(keys) == net.hop_distance(src, dst)

    def test_spine_choice_deterministic_and_color_spread(self):
        net = leafspine_machine(dims=(2, 2, 2)).network
        assert net.route_channel_keys(0, 0, 4) == net.route_channel_keys(
            0, 0, 4
        )
        routes = {tuple(net.route_channel_keys(c, 0, 4)) for c in range(2)}
        assert len(routes) == 2

    def test_channel_touches(self):
        net = leafspine_machine(dims=(2, 2, 2)).network
        for key in net.route_channel_keys(0, 0, 4):
            assert net.channel_touches(key, 0) or net.channel_touches(key, 4)
        # A leaf uplink touches every host under that leaf, no others.
        uplink = ("lup", 0, 0, 1)
        for node in range(net.nnodes):
            assert net.channel_touches(uplink, node) == (net.leaf(node) == 0)


class TestWireGate:
    def test_torus_wire_algorithm_refused_off_torus(self):
        with pytest.raises(UnsupportedTopologyError, match="torus"):
            run_collective(fattree_machine(), "bcast", "torus-shaddr",
                           64 * 1024)
        with pytest.raises(UnsupportedTopologyError):
            run_collective(leafspine_machine(), "allreduce",
                           "allreduce-torus-current", 512)

    def test_tree_wire_algorithm_refused_off_torus(self):
        with pytest.raises(UnsupportedTopologyError):
            run_collective(fattree_machine(), "bcast", "tree-shaddr",
                           64 * 1024)

    def test_machine_view_has_no_torus(self):
        view = MachineView(fattree_machine(), 0, 2)
        with pytest.raises(UnsupportedTopologyError):
            view.torus

    def test_ptp_algorithms_run_everywhere(self):
        for build in (fattree_machine, leafspine_machine):
            result = run_collective(
                build(), "allreduce", "allreduce-ring-pipelined", 512,
                verify=True,
            )
            assert result.elapsed_us > 0.0


class TestPerNetworkSelection:
    def test_switched_fabrics_select_ring_schemes(self):
        assert select_protocol("bcast", 1024 * 1024, 4,
                               network="fattree") == "ring-pipelined"
        assert select_protocol("allreduce", 1024, 4,
                               network="leafspine") == (
            "allreduce-ring-pipelined"
        )
        # Portable families keep the intra-node crossover structure.
        assert select_protocol("allgather", 4096, 4,
                               network="fattree") == "allgather-ring-current"

    def test_torus_default_unchanged(self):
        assert select_protocol("bcast", 1024 * 1024, 4) == "torus-shaddr"
        assert select_protocol("bcast", 1024 * 1024, 4,
                               network="torus") == "torus-shaddr"

    def test_unknown_network_is_topology_error_not_keyerror(self):
        with pytest.raises(UnsupportedTopologyError):
            select_protocol("bcast", 1024, 4, network="hypercube")

    def test_family_without_candidates_is_topology_error(self, monkeypatch):
        from repro.collectives import selection

        monkeypatch.setitem(selection.SELECTION_TABLES, "fakenet", {})
        with pytest.raises(UnsupportedTopologyError):
            select_protocol("bcast", 1024, 4, network="fakenet")
        # An unknown family stays a KeyError (lookup typo, not topology).
        with pytest.raises(KeyError):
            select_protocol("scan", 1024, 4, network="fattree")

    def test_auto_resolution_respects_the_backend(self):
        result = run_collective(fattree_machine(), "allreduce", "auto", 512,
                                verify=True)
        assert result.algorithm == "allreduce-ring-pipelined"
        result = run_collective(Machine(torus_dims=(2, 2, 1),
                                        mode=Mode.QUAD),
                                "allreduce", "auto", 512, verify=True)
        assert result.algorithm == "allreduce-tree"


class TestChaosOnSwitchedFabrics:
    def test_linkflap_slows_fattree_traffic(self):
        healthy = run_collective(fattree_machine(), "bcast",
                                 "ring-pipelined", 64 * 1024, verify=True)
        machine = fattree_machine()
        FaultSchedule([
            LinkFlap(start=0.0, duration=None, node=0, factor=0.25),
        ]).install(machine)
        flapped = run_collective(machine, "bcast", "ring-pipelined",
                                 64 * 1024, verify=True)
        assert flapped.elapsed_us > healthy.elapsed_us

    def test_nodeslowdown_slows_leafspine_traffic(self):
        healthy = run_collective(leafspine_machine(), "allgather",
                                 "allgather-ring-current", 4096, verify=True)
        machine = leafspine_machine()
        FaultSchedule([
            NodeSlowdown(start=0.0, duration=None, node=1, factor=0.25),
        ]).install(machine)
        slowed = run_collective(machine, "allgather",
                                "allgather-ring-current", 4096, verify=True)
        assert slowed.elapsed_us > healthy.elapsed_us

    def test_fallback_ladder_unchanged_on_fattree(self):
        wires = backend_class("fattree").wires
        assert fallback_chain("allgather", "allgather-ring-shaddr", 4,
                              wires=wires) == [
            "allgather-ring-shaddr", "allgather-ring-current",
        ]
        # Torus rungs would be filtered off a switched fabric...
        assert fallback_chain("bcast", "torus-shaddr", 4,
                              wires=wires) == ["torus-shaddr"]
        # ...and stay intact on the torus.
        assert fallback_chain("bcast", "torus-shaddr", 4,
                              wires=backend_class("torus").wires) == [
            "torus-shaddr", "torus-fifo", "torus-direct-put",
        ]

    def test_window_exhaustion_walks_the_ladder_on_fattree(self):
        factory = _machine_factory((2, 2, 1), Mode.QUAD, "fattree")
        schedule = FaultSchedule([WindowFault(start=0.0, duration=None)])
        result = run_resilient_collective(
            factory, "allgather", "allgather-ring-shaddr", 4096,
            schedule=schedule, verify=True,
        )
        assert result.algorithm == "allgather-ring-current"
        assert result.fallbacks == ["allgather-ring-shaddr"]
        assert result.recovery_time > 0.0


class TestMachineView:
    def test_local_rank_space(self):
        parent = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        view = MachineView(parent, 2, 4)
        assert view.nnodes == 4
        assert view.nprocs == 16
        assert view.ppn == parent.ppn
        assert view.rank_to_node(0) == 0
        assert view.rank_to_node(view.nprocs - 1) == 3
        assert view.node_ranks(0) == list(range(parent.ppn))
        with pytest.raises(ValueError):
            view.check_rank(view.nprocs)

    def test_nodes_are_parent_slices(self):
        parent = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        view = MachineView(parent, 2, 4)
        assert view.nodes[0] is parent.nodes[2]
        assert view.dma[3] is parent.dma[5]
        assert view.engine is parent.engine
        assert view.flownet is parent.flownet

    def test_view_network_translates_indices(self):
        parent = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        view = MachineView(parent, 2, 4)
        net = view.network
        assert net.nnodes == 4
        assert net.coords(0) == parent.network.coords(2)
        assert net.hop_distance(0, 1) == parent.network.hop_distance(2, 3)
        ring = net.ring_order(torus_colors(1)[0], 1)
        assert ring[0] == 1 and sorted(ring) == [0, 1, 2, 3]

    def test_bad_slices_rejected(self):
        parent = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        with pytest.raises(ValueError):
            MachineView(parent, 3, 4)
        with pytest.raises(ValueError):
            MachineView(parent, 0, 0)

    def test_collective_on_a_view_verifies(self):
        parent = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        view = MachineView(parent, 3, 4)
        result = run_collective(view, "allgather", "allgather-ring-current",
                                1024, verify=True)
        assert result.nprocs == 16
        assert result.elapsed_us > 0.0


class TestTrafficGenerator:
    def test_draw_jobs_is_seed_deterministic(self):
        a = draw_jobs(42, 8, 3)
        b = draw_jobs(42, 8, 3)
        assert a == b
        assert draw_jobs(43, 8, 3) != a
        menu = {(family, algorithm) for family, algorithm, _ in JOB_MENU}
        for job in a:
            assert (job["family"], job["algorithm"]) in menu
            assert 0 <= job["node_start"]
            assert job["node_start"] + job["node_count"] <= 8

    def test_multi_job_draws_always_contend(self):
        for seed in range(6):
            jobs = draw_jobs(seed, 8, 2)
            assert overlapping_pairs(jobs), seed

    def test_report_replays_from_the_seed(self):
        first = run_traffic(seed=5, njobs=2, dims=(2, 2, 1),
                            network="fattree")
        again = run_traffic(seed=5, njobs=2, dims=(2, 2, 1),
                            network="fattree")
        assert json.dumps(first, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_parallel_equals_serial(self):
        serial = run_traffic(seed=5, njobs=2, dims=(2, 2, 1),
                             network="leafspine")
        parallel = run_traffic(seed=5, njobs=2, dims=(2, 2, 1),
                               network="leafspine", jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_contention_slows_overlapping_jobs(self):
        report = run_traffic(seed=5, njobs=2, dims=(2, 2, 1),
                             network="fattree")
        assert report["summary"]["overlapping_pairs"] >= 1
        assert report["summary"]["max_slowdown"] > 1.0
        for job in report["jobs"]:
            assert job["contended_us"] >= job["isolated_us"]
            assert job["slowdown"] == pytest.approx(
                job["contended_us"] / job["isolated_us"]
            )
