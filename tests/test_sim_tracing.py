"""Tests for Chrome-trace export."""

import json

import pytest

from repro.bench import run_bcast
from repro.hardware import Machine, Mode
from repro.sim import Engine
from repro.sim.tracing import chrome_trace, collect_flow_events, write_chrome_trace


def traced_run():
    engine = Engine(trace=True)
    machine = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD, engine=engine)
    run_bcast(machine, "torus-shaddr", nbytes=64 * 1024)
    return engine


class TestChromeTrace:
    def test_flow_events_paired(self):
        engine = traced_run()
        events = collect_flow_events(engine)
        assert events, "expected at least one flow duration event"
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert event["ts"] >= 0

    def test_document_structure(self):
        engine = traced_run()
        doc = chrome_trace(engine)
        assert "traceEvents" in doc
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M"
        ]
        assert "network transfers" in names
        assert "core copies / staging" in names

    def test_rows_cover_expected_classes(self):
        engine = traced_run()
        events = collect_flow_events(engine)
        rows = {e["tid"] for e in events}
        # A shared-address broadcast produces network transfers and core
        # copies at minimum.
        assert 3 in rows
        assert 5 in rows

    def test_write_roundtrip(self, tmp_path):
        engine = traced_run()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(engine, str(path))
        assert count > 0
        loaded = json.loads(path.read_text())
        durations = [e for e in loaded["traceEvents"] if e.get("ph") == "X"]
        assert len(durations) == count

    def test_untraced_engine_yields_empty(self):
        engine = Engine()  # tracing off
        machine = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD, engine=engine)
        run_bcast(machine, "torus-shaddr", nbytes=1024)
        assert collect_flow_events(engine) == []
