"""Tests for Chrome-trace export."""

import json

import pytest

from repro.bench import run_bcast
from repro.hardware import Machine, Mode
from repro.sim import Engine
from repro.sim.tracing import (
    _row_for,
    chrome_trace,
    collect_flow_events,
    incomplete_flow_count,
    telemetry_events,
    write_chrome_trace,
)


def traced_run():
    engine = Engine(trace=True)
    machine = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD, engine=engine)
    run_bcast(machine, "torus-shaddr", nbytes=64 * 1024)
    return engine


class TestChromeTrace:
    def test_flow_events_paired(self):
        engine = traced_run()
        events = collect_flow_events(engine)
        assert events, "expected at least one flow duration event"
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert event["ts"] >= 0

    def test_document_structure(self):
        engine = traced_run()
        doc = chrome_trace(engine)
        assert "traceEvents" in doc
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M"
        ]
        assert "network transfers" in names
        assert "core copies / staging" in names

    def test_rows_cover_expected_classes(self):
        engine = traced_run()
        events = collect_flow_events(engine)
        rows = {e["tid"] for e in events}
        # A shared-address broadcast produces network transfers and core
        # copies at minimum.
        assert 3 in rows
        assert 5 in rows

    def test_write_roundtrip(self, tmp_path):
        engine = traced_run()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(engine, str(path))
        assert count > 0
        loaded = json.loads(path.read_text())
        durations = [e for e in loaded["traceEvents"] if e.get("ph") == "X"]
        assert len(durations) == count

    def test_untraced_engine_yields_empty(self):
        engine = Engine()  # tracing off
        machine = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD, engine=engine)
        run_bcast(machine, "torus-shaddr", nbytes=1024)
        assert collect_flow_events(engine) == []


class TestIncompleteFlows:
    """A trace truncated mid-flow must not silently drop the open flows."""

    def truncated_engine(self):
        engine = Engine(trace=True)
        engine.trace_log.append((1.0, "flow+ s.c0 start"))
        engine.trace_log.append((2.0, "flow- s.c0 done"))
        engine.trace_log.append((3.0, "flow+ s.c1 start"))  # never closes
        return engine

    def test_unmatched_flow_exported_not_dropped(self):
        events = collect_flow_events(self.truncated_engine())
        assert len(events) == 2
        by_name = {e["name"]: e for e in events}
        assert by_name["s.c1"]["dur"] == 0.0
        assert by_name["s.c1"]["args"]["incomplete"] is True
        assert "incomplete" not in by_name["s.c0"]["args"]

    def test_incomplete_count_surfaces_in_document(self):
        engine = self.truncated_engine()
        assert incomplete_flow_count(collect_flow_events(engine)) == 1
        doc = chrome_trace(engine)
        assert doc["otherData"]["incomplete_flows"] == 1

    def test_complete_trace_reports_zero(self):
        engine = Engine(trace=True)
        machine = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD,
                          engine=engine)
        run_bcast(machine, "torus-shaddr", nbytes=64 * 1024)
        doc = chrome_trace(engine)
        assert doc["otherData"]["incomplete_flows"] == 0


class TestRegistryRowMetadata:
    """Flow-row assignment driven by registry ``trace_rows`` capability
    metadata, with the old substring heuristics as the fallback."""

    def test_registry_declared_rows_win(self):
        # allreduce-torus-current declares ("gather.", "dma") — without the
        # registry metadata the heuristics would classify it as row 2 via
        # the "gather" substring too, but "lred." flows would land in
        # row 6 (no heuristic matches them).
        assert _row_for("gather.c0") == 2
        assert _row_for("lred.c1.n3") == 5
        assert _row_for("lbcast.l2") == 5
        assert _row_for("bfifo.n1") == 5

    def test_heuristic_fallback_still_classifies(self):
        assert _row_for("fault.link") == 1
        assert _row_for("tree.up") == 4
        assert _row_for("entirely-novel-flow") == 6

    def test_registered_algorithms_declare_valid_rows(self):
        from repro.collectives.registry import iter_algorithms

        valid = {"fault", "dma", "network", "tree", "copy", "other"}
        declaring = 0
        for info in iter_algorithms():
            for substring, row_class in info.trace_rows:
                assert row_class in valid, (info.name, substring, row_class)
                declaring += 1
        assert declaring > 0


class TestTelemetryEvents:
    def recorded_engine(self):
        engine = Engine(trace=True)
        machine = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD,
                          engine=engine)
        recorder = machine.attach_telemetry()
        run_bcast(machine, "tree-shaddr", nbytes=64 * 1024)
        return engine, machine, recorder

    def test_role_rows_and_counter_tracks(self):
        _, machine, recorder = self.recorded_engine()
        events = telemetry_events(recorder,
                                  l3_bytes=machine.params.l3_bytes)
        names = {e["args"]["name"] for e in events
                 if e.get("name") == "thread_name"}
        assert any("injector" in n for n in names)
        assert any("copier" in n for n in names)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "expected Perfetto counter-track events"
        ws = [e for e in counters if e["name"] == "working-set"]
        assert ws and all(
            e["args"]["l3_bytes"] == machine.params.l3_bytes for e in ws
        )

    def test_document_gains_role_and_counter_processes(self):
        engine, machine, recorder = self.recorded_engine()
        doc = chrome_trace(engine, telemetry=recorder,
                           l3_bytes=machine.params.l3_bytes)
        process_names = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert {"flows", "core roles", "counters"} <= process_names

    def test_write_roundtrip_with_telemetry(self, tmp_path):
        engine, machine, recorder = self.recorded_engine()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(engine, str(path), telemetry=recorder,
                                   l3_bytes=machine.params.l3_bytes)
        loaded = json.loads(path.read_text())
        durations = [e for e in loaded["traceEvents"] if e.get("ph") == "X"]
        assert len(durations) == count
        assert {e["pid"] for e in loaded["traceEvents"]} >= {1, 2, 3}
