"""Integration tests for the reduce / scatter / barrier extensions."""

import pytest

from repro.bench.harness import run_barrier, run_reduce, run_scatter
from repro.collectives.registry import (
    barrier_algorithm,
    list_barrier_algorithms,
    list_reduce_algorithms,
    list_scatter_algorithms,
    reduce_algorithm,
    scatter_algorithm,
)
from repro.hardware import Machine, Mode

REDUCE_ALGOS = ["reduce-torus-current", "reduce-torus-shaddr"]
SCATTER_ALGOS = ["scatter-ring-current", "scatter-ring-shaddr"]
BARRIER_ALGOS = ["barrier-gi", "barrier-tree", "barrier-torus"]


class TestReduce:
    @pytest.mark.parametrize("algorithm", REDUCE_ALGOS)
    def test_exact_sum_at_root(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        result = run_reduce(m, algorithm, count=5000, iters=1, verify=True)
        assert result.elapsed_us > 0

    @pytest.mark.parametrize("algorithm", REDUCE_ALGOS)
    def test_odd_count(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        run_reduce(m, algorithm, count=3331, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", REDUCE_ALGOS)
    def test_single_node(self, algorithm):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        run_reduce(m, algorithm, count=2000, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", REDUCE_ALGOS)
    def test_zero_count(self, algorithm):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        assert run_reduce(m, algorithm, count=0).elapsed_us >= 0

    def test_current_works_smp(self):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.SMP)
        run_reduce(m, "reduce-torus-current", count=4000, iters=1,
                   verify=True)

    def test_shaddr_requires_quad(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.DUAL)
        with pytest.raises(ValueError):
            run_reduce(m, "reduce-torus-shaddr", count=100)

    def test_shaddr_beats_current(self):
        results = {}
        for algorithm in REDUCE_ALGOS:
            m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            results[algorithm] = run_reduce(
                m, algorithm, count=128 * 1024
            ).elapsed_us
        assert (
            results["reduce-torus-shaddr"]
            < results["reduce-torus-current"]
        )

    def test_reduce_cheaper_than_allreduce(self):
        from repro.bench import run_allreduce

        m1 = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        reduce_t = run_reduce(
            m1, "reduce-torus-shaddr", count=64 * 1024
        ).elapsed_us
        m2 = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        allreduce_t = run_allreduce(
            m2, "allreduce-torus-shaddr", count=64 * 1024
        ).elapsed_us
        assert reduce_t < allreduce_t

    def test_registry(self):
        assert list_reduce_algorithms() == sorted(REDUCE_ALGOS)
        with pytest.raises(KeyError):
            reduce_algorithm("nope")


class TestScatter:
    @pytest.mark.parametrize("algorithm", SCATTER_ALGOS)
    def test_each_rank_gets_its_block(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        run_scatter(m, algorithm, block_bytes=4096, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", SCATTER_ALGOS)
    def test_odd_block(self, algorithm):
        m = Machine(torus_dims=(3, 2, 1), mode=Mode.QUAD)
        run_scatter(m, algorithm, block_bytes=1025, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", SCATTER_ALGOS)
    def test_single_node(self, algorithm):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        run_scatter(m, algorithm, block_bytes=2048, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", SCATTER_ALGOS)
    def test_smp_mode(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.SMP)
        run_scatter(m, algorithm, block_bytes=4096, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", SCATTER_ALGOS)
    def test_zero_block(self, algorithm):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        assert run_scatter(m, algorithm, block_bytes=0).elapsed_us >= 0

    def test_registry(self):
        assert list_scatter_algorithms() == sorted(SCATTER_ALGOS)
        with pytest.raises(KeyError):
            scatter_algorithm("nope")


class TestBarrier:
    @pytest.mark.parametrize("algorithm", BARRIER_ALGOS)
    def test_completes_with_positive_latency(self, algorithm):
        m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        result = run_barrier(m, algorithm, iters=2)
        assert result.elapsed_us > 0
        assert result.nbytes == 0

    def test_hardware_barrier_fastest(self):
        latencies = {}
        for algorithm in BARRIER_ALGOS:
            m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            latencies[algorithm] = run_barrier(m, algorithm).elapsed_us
        assert latencies["barrier-gi"] < latencies["barrier-tree"]
        assert latencies["barrier-gi"] < latencies["barrier-torus"]

    def test_software_barrier_latency_grows_with_machine(self):
        small = run_barrier(
            Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD), "barrier-torus"
        ).elapsed_us
        large = run_barrier(
            Machine(torus_dims=(4, 4, 4), mode=Mode.QUAD), "barrier-torus"
        ).elapsed_us
        assert large > small

    @pytest.mark.parametrize("algorithm", BARRIER_ALGOS)
    def test_single_node(self, algorithm):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        assert run_barrier(m, algorithm).elapsed_us > 0

    def test_registry(self):
        assert list_barrier_algorithms() == sorted(BARRIER_ALGOS)
        with pytest.raises(KeyError):
            barrier_algorithm("nope")
