"""Tests for resource-utilization profiling — including the paper's central
bottleneck claims, asserted directly from utilization counters."""

import pytest

from repro.bench import run_bcast, utilization_report
from repro.bench.profile import format_report
from repro.hardware import Machine, Mode
from repro.sim import Engine, FlowNetwork


class TestBusyIntegrals:
    def test_single_flow_integral(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 100.0)

        def p():
            yield net.transfer({r: 1.0}, 500.0)  # 5 us at 100 B/us
            yield eng.timeout(5.0)  # idle tail

        proc = eng.spawn(p())
        eng.run_until_processes_finish([proc])
        assert r.busy_integral(eng.now) == pytest.approx(500.0)
        assert r.utilization(eng.now) == pytest.approx(0.5)

    def test_weighted_flow_counts_weighted_bytes(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 100.0)

        def p():
            yield net.transfer({r: 2.0}, 300.0)

        proc = eng.spawn(p())
        eng.run_until_processes_finish([proc])
        assert r.busy_integral(eng.now) == pytest.approx(600.0)

    def test_utilization_zero_window(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 10.0)
        assert r.utilization(0.0) == 0.0

    def test_overlapping_flows_integrate_total_load(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 100.0)

        def p(nbytes):
            yield net.transfer({r: 1.0}, nbytes)

        procs = [eng.spawn(p(250.0)), eng.spawn(p(750.0))]
        eng.run_until_processes_finish(procs)
        # All 1000 bytes pass through r regardless of sharing pattern.
        assert r.busy_integral(eng.now) == pytest.approx(1000.0)


class TestMachineReports:
    def test_report_groups_present(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        run_bcast(m, "torus-shaddr", nbytes=64 * 1024)
        report = utilization_report(m)
        for group in ("mem", "dma", "tree_up", "tree_down", "links"):
            assert group in report.groups
        assert report.group("dma").count == m.nnodes

    def test_unknown_group_raises(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        run_bcast(m, "torus-shaddr", nbytes=1024)
        with pytest.raises(KeyError):
            utilization_report(m).group("gpu")

    def test_format_report_renders(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        run_bcast(m, "torus-shaddr", nbytes=64 * 1024)
        text = format_report(utilization_report(m))
        assert "dma" in text and "%" in text


class TestPaperBottleneckClaims:
    """Section V-A-1's contention story, read off the utilization counters."""

    def _profile(self, algorithm, mode=Mode.QUAD):
        m = Machine(torus_dims=(2, 2, 2), mode=mode)
        run_bcast(m, algorithm, nbytes=1024 * 1024)
        return utilization_report(m)

    def test_direct_put_is_dma_bound(self):
        """'The DMA cannot keep pace with both the inter- and intra-node
        data transfers': the baseline saturates the engine."""
        report = self._profile("torus-direct-put")
        assert report.group("dma").peak > 0.8
        # ...while the wires sit mostly idle.
        assert report.group("links").mean < 0.3

    def test_shaddr_relieves_the_dma(self):
        """The shared-address scheme moves intra-node bytes onto cores."""
        baseline = self._profile("torus-direct-put")
        shaddr = self._profile("torus-shaddr")
        assert shaddr.group("dma").peak < baseline.group("dma").peak
        # The network is driven harder: link utilization rises.
        assert shaddr.group("links").mean > baseline.group("links").mean

    def test_tree_algorithms_leave_torus_idle(self):
        report = self._profile("tree-shaddr")
        # Torus channels are created lazily: a pure tree algorithm never
        # instantiates them at all.
        links = report.groups.get("links")
        assert links is None or links.mean == pytest.approx(0.0)
        assert report.group("tree_down").mean > 0.0
