"""Tests for resource-utilization profiling — including the paper's central
bottleneck claims, asserted directly from utilization counters."""

import pytest

from repro.bench import run_allreduce, run_bcast, utilization_report
from repro.bench.profile import format_report
from repro.hardware import Machine, Mode
from repro.sim import Engine, FlowNetwork


class TestBusyIntegrals:
    def test_single_flow_integral(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 100.0)

        def p():
            yield net.transfer({r: 1.0}, 500.0)  # 5 us at 100 B/us
            yield eng.timeout(5.0)  # idle tail

        proc = eng.spawn(p())
        eng.run_until_processes_finish([proc])
        assert r.busy_integral(eng.now) == pytest.approx(500.0)
        assert r.utilization(eng.now) == pytest.approx(0.5)

    def test_weighted_flow_counts_weighted_bytes(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 100.0)

        def p():
            yield net.transfer({r: 2.0}, 300.0)

        proc = eng.spawn(p())
        eng.run_until_processes_finish([proc])
        assert r.busy_integral(eng.now) == pytest.approx(600.0)

    def test_utilization_zero_window(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 10.0)
        assert r.utilization(0.0) == 0.0

    def test_overlapping_flows_integrate_total_load(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 100.0)

        def p(nbytes):
            yield net.transfer({r: 1.0}, nbytes)

        procs = [eng.spawn(p(250.0)), eng.spawn(p(750.0))]
        eng.run_until_processes_finish(procs)
        # All 1000 bytes pass through r regardless of sharing pattern.
        assert r.busy_integral(eng.now) == pytest.approx(1000.0)


class TestMachineReports:
    def test_report_groups_present(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        run_bcast(m, "torus-shaddr", nbytes=64 * 1024)
        report = utilization_report(m)
        for group in ("mem", "dma", "tree_up", "tree_down", "links"):
            assert group in report.groups
        assert report.group("dma").count == m.nnodes

    def test_unknown_group_raises(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        run_bcast(m, "torus-shaddr", nbytes=1024)
        with pytest.raises(KeyError):
            utilization_report(m).group("gpu")

    def test_format_report_renders(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        run_bcast(m, "torus-shaddr", nbytes=64 * 1024)
        text = format_report(utilization_report(m))
        assert "dma" in text and "%" in text


class TestPaperBottleneckClaims:
    """Section V-A-1's contention story, read off the utilization counters."""

    def _profile(self, algorithm, mode=Mode.QUAD):
        m = Machine(torus_dims=(2, 2, 2), mode=mode)
        run_bcast(m, algorithm, nbytes=1024 * 1024)
        return utilization_report(m)

    def test_direct_put_is_dma_bound(self):
        """'The DMA cannot keep pace with both the inter- and intra-node
        data transfers': the baseline saturates the engine."""
        report = self._profile("torus-direct-put")
        assert report.group("dma").peak > 0.8
        # ...while the wires sit mostly idle.
        assert report.group("links").mean < 0.3

    def test_shaddr_relieves_the_dma(self):
        """The shared-address scheme moves intra-node bytes onto cores."""
        baseline = self._profile("torus-direct-put")
        shaddr = self._profile("torus-shaddr")
        assert shaddr.group("dma").peak < baseline.group("dma").peak
        # The network is driven harder: link utilization rises.
        assert shaddr.group("links").mean > baseline.group("links").mean

    def test_tree_algorithms_leave_torus_idle(self):
        report = self._profile("tree-shaddr")
        # Torus channels are created lazily: a pure tree algorithm never
        # instantiates them at all.
        links = report.groups.get("links")
        assert links is None or links.mean == pytest.approx(0.0)
        assert report.group("tree_down").mean > 0.0

    def test_tree_bcast_report_serves_payload_bytes(self):
        """The tree-bcast path: downtree wire and memory both carry at
        least one copy of the payload on every node."""
        nbytes = 512 * 1024
        m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        run_bcast(m, "tree-shaddr", nbytes=nbytes)
        report = utilization_report(m)
        assert report.group("tree_down").bytes_served >= nbytes
        assert report.group("mem").bytes_served >= nbytes * m.nnodes
        assert 0.0 < report.group("tree_down").mean <= 1.0

    def test_profile_identical_with_telemetry_attached(self):
        """Telemetry is observational: the utilization profile of a
        recorded run matches the seed run exactly, group by group."""
        def profile(attach):
            m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            if attach:
                m.attach_telemetry()
            run_bcast(m, "tree-shaddr", nbytes=256 * 1024)
            return utilization_report(m)

        bare, recorded = profile(False), profile(True)
        assert set(bare.groups) == set(recorded.groups)
        for name, group in bare.groups.items():
            other = recorded.groups[name]
            assert group.bytes_served == other.bytes_served, name
            assert group.mean == other.mean, name
            assert group.peak == other.peak, name


class TestAllreduceProfiles:
    """Table I's contention story on the allreduce path."""

    def _profile(self, algorithm, count=96 * 1024):
        m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        run_allreduce(m, algorithm, count)
        return m, utilization_report(m)

    def test_current_allreduce_report_groups(self):
        m, report = self._profile("allreduce-torus-current")
        for group in ("mem", "dma", "links"):
            assert group in report.groups
        assert report.group("dma").count == m.nnodes
        assert report.group("dma").bytes_served > 0

    def test_shaddr_allreduce_offloads_the_dma(self):
        """'No extra copy operations are necessary': the shared-address
        scheme strips the DMA of the baseline's redundant local copies."""
        _, current = self._profile("allreduce-torus-current")
        _, shaddr = self._profile("allreduce-torus-shaddr")
        assert (shaddr.group("dma").bytes_served
                < current.group("dma").bytes_served)
        # The cores take over that work: memory traffic stays real.
        assert shaddr.group("mem").bytes_served > 0

    def test_allreduce_report_renders(self):
        _, report = self._profile("allreduce-torus-shaddr")
        text = format_report(report)
        assert "dma" in text and "%" in text
