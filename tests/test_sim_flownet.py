"""Unit and property tests for the max-min fair flow network."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FlowNetwork, SimulationError


def run_transfers(specs):
    """specs: list of (nbytes, cap, usage_spec) where usage_spec maps
    resource-name -> weight; resources are created with given capacities.

    Returns (completion_times, rates_probe).
    """
    eng = Engine()
    net = FlowNetwork(eng)
    resources = {}
    done = {}

    def ensure(name, capacity):
        if name not in resources:
            resources[name] = net.add_resource(name, capacity)
        return resources[name]

    def proc(i, nbytes, cap, usage):
        yield net.transfer(usage, nbytes, cap=cap, name=f"f{i}")
        done[i] = eng.now

    for i, (nbytes, cap, usage_spec) in enumerate(specs):
        usage = {
            ensure(name, capacity): weight
            for (name, capacity), weight in usage_spec.items()
        }
        eng.spawn(proc(i, nbytes, cap, usage))
    eng.run()
    return done


class TestFlowNetworkBasics:
    def test_single_flow_resource_bound(self):
        done = run_transfers([(1000.0, None, {("r", 100.0): 1.0})])
        assert done[0] == pytest.approx(10.0)

    def test_single_flow_cap_bound(self):
        done = run_transfers([(1000.0, 50.0, {("r", 100.0): 1.0})])
        assert done[0] == pytest.approx(20.0)

    def test_weight_two_halves_rate(self):
        # Copy semantics: weight 2 on a 100-capacity resource -> rate 50.
        done = run_transfers([(1000.0, None, {("mem", 100.0): 2.0})])
        assert done[0] == pytest.approx(20.0)

    def test_equal_sharing(self):
        done = run_transfers(
            [
                (500.0, None, {("r", 100.0): 1.0}),
                (500.0, None, {("r", 100.0): 1.0}),
            ]
        )
        assert done[0] == pytest.approx(10.0)
        assert done[1] == pytest.approx(10.0)

    def test_capped_flow_leaves_surplus_to_other(self):
        # Flow0 capped at 20, flow1 takes the remaining 80.
        done = run_transfers(
            [
                (200.0, 20.0, {("r", 100.0): 1.0}),
                (800.0, None, {("r", 100.0): 1.0}),
            ]
        )
        assert done[0] == pytest.approx(10.0)
        assert done[1] == pytest.approx(10.0)

    def test_multi_resource_bottleneck(self):
        # Flow uses r1 (cap 100) and r2 (cap 30): r2 binds.
        done = run_transfers(
            [(300.0, None, {("r1", 100.0): 1.0, ("r2", 30.0): 1.0})]
        )
        assert done[0] == pytest.approx(10.0)

    def test_departure_releases_capacity(self):
        done = run_transfers(
            [
                (250.0, None, {("r", 100.0): 1.0}),
                (1000.0, None, {("r", 100.0): 1.0}),
            ]
        )
        # Share 50/50 until t=5 (flow0 done), then flow1 at 100:
        # flow1: 250 by t=5, 750 left at 100 -> t=12.5.
        assert done[0] == pytest.approx(5.0)
        assert done[1] == pytest.approx(12.5)

    def test_zero_byte_completes_immediately(self):
        done = run_transfers([(0.0, None, {("r", 10.0): 1.0})])
        assert done[0] == 0.0

    def test_unconstrained_flow_rejected(self):
        eng = Engine()
        net = FlowNetwork(eng)
        with pytest.raises(SimulationError):
            net.transfer({}, 100.0)

    def test_negative_bytes_rejected(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 10.0)
        with pytest.raises(ValueError):
            net.transfer({r: 1.0}, -5.0)

    def test_non_positive_weight_rejected(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 10.0)
        with pytest.raises(ValueError):
            net.transfer({r: 0.0}, 5.0)

    def test_capacity_reconfiguration(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 100.0)
        done = {}

        def p():
            yield net.transfer({r: 1.0}, 1000.0)
            done["t"] = eng.now

        def reconf():
            yield eng.timeout(5.0)
            r.set_capacity(50.0)

        eng.spawn(p())
        eng.spawn(reconf())
        eng.run()
        # 500 bytes at 100, remaining 500 at 50 -> 5 + 10 = 15.
        assert done["t"] == pytest.approx(15.0)

    def test_completion_accounting(self):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 10.0)

        def p():
            yield net.transfer({r: 1.0}, 70.0)
            yield net.transfer({r: 1.0}, 30.0)

        eng.spawn(p())
        eng.run()
        assert net.bytes_completed == pytest.approx(100.0)
        assert net.flows_completed == 2

    def test_independent_components_do_not_interact(self):
        done = run_transfers(
            [
                (100.0, None, {("a", 10.0): 1.0}),
                (100.0, None, {("b", 100.0): 1.0}),
            ]
        )
        assert done[0] == pytest.approx(10.0)
        assert done[1] == pytest.approx(1.0)


class TestMaxMinProperties:
    """Property-based checks of the allocation's defining invariants."""

    @staticmethod
    def _snapshot_rates(nflows, nres, weights, caps, capacities):
        """Start all flows at t=0, run to just after 0, inspect rates."""
        eng = Engine()
        net = FlowNetwork(eng)
        resources = [
            net.add_resource(f"r{j}", capacities[j]) for j in range(nres)
        ]
        flows = []
        for i in range(nflows):
            usage = {
                resources[j]: weights[i][j]
                for j in range(nres)
                if weights[i][j] > 0
            }
            if not usage:
                usage = {resources[0]: 1.0}
            flows.append(
                net.transfer(usage, 1e9, cap=caps[i], name=f"f{i}")
            )
        return flows, resources

    @given(
        nflows=st.integers(1, 6),
        nres=st.integers(1, 4),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_feasible_and_pareto(self, nflows, nres, data):
        weights = [
            [
                data.draw(st.sampled_from([0.0, 1.0, 2.0, 3.0]))
                for _ in range(nres)
            ]
            for _ in range(nflows)
        ]
        caps = [
            data.draw(st.sampled_from([5.0, 20.0, 100.0, None]))
            for _ in range(nflows)
        ]
        capacities = [
            data.draw(st.sampled_from([10.0, 50.0, 200.0]))
            for _ in range(nres)
        ]
        flows, resources = self._snapshot_rates(
            nflows, nres, weights, caps, capacities
        )
        # Feasibility: no resource over capacity; no flow over its cap.
        for r in resources:
            assert r.load <= r.capacity + 1e-6
        for i, f in enumerate(flows):
            if caps[i] is not None:
                assert f.rate <= caps[i] + 1e-6
            assert f.rate > 0
        # Pareto/max-min: every flow is blocked by either its cap or a
        # saturated resource it uses.
        for i, f in enumerate(flows):
            capped = caps[i] is not None and f.rate >= caps[i] - 1e-6
            saturated = any(
                r.load >= r.capacity - 1e-6 for r in f.usage
            )
            assert capped or saturated, f"flow {i} could still grow"

    @given(n=st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_symmetric_flows_get_equal_rates(self, n):
        eng = Engine()
        net = FlowNetwork(eng)
        r = net.add_resource("r", 100.0)
        flows = [net.transfer({r: 1.0}, 1e9, name=f"f{i}") for i in range(n)]
        rates = {f.rate for f in flows}
        assert len(rates) == 1
        assert flows[0].rate == pytest.approx(100.0 / n)
