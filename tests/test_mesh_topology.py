"""Tests for 3D-mesh (non-wraparound) support."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import run_bcast
from repro.collectives.bcast.torus_common import TorusBcastNetwork
from repro.hardware import Machine, Mode
from repro.msg import RectangleSchedule, torus_colors
from repro.util.units import MIB


def mesh(dims=(3, 2, 2), mode=Mode.QUAD):
    return Machine(torus_dims=dims, mode=mode, wrap=False)


class TestMeshTopology:
    def test_line_nodes_stop_at_boundary(self):
        m = mesh(dims=(4, 1, 1), mode=Mode.SMP)
        t = m.torus
        assert t.line_nodes(1, 0, 1) == [2, 3]
        assert t.line_nodes(1, 0, -1) == [0]
        assert t.line_nodes(0, 0, -1) == []

    def test_hop_distance_no_wrap(self):
        m = mesh(dims=(8, 1, 1), mode=Mode.SMP)
        t = m.torus
        assert t.hop_distance(0, 7) == 7  # no wraparound shortcut

    def test_ptp_send_routes_without_wrap(self):
        m = mesh(dims=(4, 1, 1), mode=Mode.SMP)
        done = {}

        def sender():
            ev = m.torus.ptp_send(0, src=0, dst=3, nbytes=425)
            yield ev
            done["t"] = m.engine.now

        proc = m.spawn(sender())
        m.engine.run_until_processes_finish([proc])
        hop = m.params.torus_hop_latency
        assert done["t"] == pytest.approx(1.0 + 3 * hop)

    def test_relay_signs_both_directions(self):
        m = mesh(mode=Mode.SMP)
        sched = RectangleSchedule(m.torus, 2, torus_colors(3)[0])
        assert sorted(sched.relay_signs()) == [-1, 1]
        torus_machine = Machine(torus_dims=(3, 2, 2), mode=Mode.SMP)
        sched_t = RectangleSchedule(torus_machine.torus, 2, torus_colors(3)[0])
        assert sched_t.relay_signs() == [1]

    @given(
        dims=st.tuples(
            st.integers(1, 4), st.integers(1, 4), st.integers(1, 3)
        ).filter(lambda d: d[0] * d[1] * d[2] > 1),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_mesh_roles_cover_every_node(self, dims, data):
        m = Machine(torus_dims=dims, mode=Mode.SMP, wrap=False)
        root = data.draw(st.integers(0, m.nnodes - 1))
        for color in torus_colors(3):
            sched = RectangleSchedule(m.torus, root, color)
            roles = sched.all_roles()
            assert roles[root].receive_phase == -1
            for node, role in enumerate(roles):
                if node != root:
                    assert 0 <= role.receive_phase < sched.nphases


class TestMeshCollectives:
    def test_network_reduces_to_three_colors(self):
        from repro.collectives.bcast.torus_direct_put import (
            TorusDirectPutBcast,
        )

        m = mesh()
        inv = TorusDirectPutBcast(m, 0, 60_000)
        assert len(inv.net.colors) == 3

    @pytest.mark.parametrize(
        "algorithm", ["torus-shaddr", "torus-fifo", "torus-direct-put"]
    )
    def test_mesh_bcast_verifies(self, algorithm):
        result = run_bcast(mesh(), algorithm, 50_000, iters=1, verify=True)
        assert result.elapsed_us > 0

    def test_mesh_bcast_with_interior_root(self):
        m = mesh(dims=(3, 3, 1))
        root = m.node_ranks(4)[0]  # centre of the mesh
        run_bcast(m, "torus-shaddr", 30_000, root=root, iters=1, verify=True)

    def test_mesh_slower_than_torus_at_peak(self):
        torus_bw = run_bcast(
            Machine(torus_dims=(4, 4, 4), mode=Mode.QUAD),
            "torus-shaddr", 2 * MIB,
        ).bandwidth_mbs
        mesh_bw = run_bcast(
            Machine(torus_dims=(4, 4, 4), mode=Mode.QUAD, wrap=False),
            "torus-shaddr", 2 * MIB,
        ).bandwidth_mbs
        assert mesh_bw < torus_bw
