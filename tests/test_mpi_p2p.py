"""Tests for the point-to-point layer (eager/rendezvous ping-pong)."""

import pytest

from repro.hardware import Machine, Mode
from repro.mpi.p2p import (
    DEFAULT_EAGER_LIMIT,
    run_pingpong,
    select_protocol,
)


def machine(dims=(4, 1, 1), mode=Mode.QUAD):
    return Machine(torus_dims=dims, mode=mode)


class TestProtocolSelection:
    def test_short_is_eager(self):
        assert select_protocol(128) == "eager"

    def test_long_is_rendezvous(self):
        assert select_protocol(DEFAULT_EAGER_LIMIT) == "rendezvous"
        assert select_protocol(1 << 20) == "rendezvous"


class TestPingPong:
    def test_auto_matches_policy(self):
        m = machine()
        short = run_pingpong(m, 256)
        assert short.protocol == "eager"
        long = run_pingpong(machine(), 64 * 1024)
        assert long.protocol == "rendezvous"

    def test_eager_wins_short_messages(self):
        eager = run_pingpong(machine(), 256, protocol="eager")
        rndv = run_pingpong(machine(), 256, protocol="rendezvous")
        assert eager.latency_us < rndv.latency_us

    def test_rendezvous_wins_large_messages(self):
        eager = run_pingpong(machine(), 512 * 1024, protocol="eager")
        rndv = run_pingpong(machine(), 512 * 1024, protocol="rendezvous")
        assert rndv.latency_us < eager.latency_us

    def test_latency_monotone_in_size(self):
        lat = [
            run_pingpong(machine(), n).latency_us
            for n in (0, 1024, 64 * 1024, 512 * 1024)
        ]
        assert lat == sorted(lat)

    def test_farther_partner_costs_more(self):
        m = machine(dims=(8, 1, 1), mode=Mode.SMP)
        near = run_pingpong(m, 1024, rank_a=0, rank_b=1)
        m2 = machine(dims=(8, 1, 1), mode=Mode.SMP)
        far = run_pingpong(m2, 1024, rank_a=0, rank_b=4)
        assert far.latency_us > near.latency_us

    def test_default_partner_is_farthest(self):
        m = machine(dims=(8, 1, 1), mode=Mode.SMP)
        result = run_pingpong(m, 1024)
        # Should not raise and should pick rank 4 (4 hops away) — latency
        # equals an explicit rank-4 ping-pong.
        m2 = machine(dims=(8, 1, 1), mode=Mode.SMP)
        explicit = run_pingpong(m2, 1024, rank_a=0, rank_b=4)
        assert result.latency_us == pytest.approx(explicit.latency_us)

    def test_intra_node_faster_than_inter_node(self):
        m = machine(dims=(4, 1, 1), mode=Mode.QUAD)
        intra = run_pingpong(m, 16 * 1024, rank_a=0, rank_b=1)
        m2 = machine(dims=(4, 1, 1), mode=Mode.QUAD)
        inter = run_pingpong(m2, 16 * 1024, rank_a=0, rank_b=8)
        assert intra.latency_us < inter.latency_us

    def test_bandwidth_property(self):
        result = run_pingpong(machine(), 1 << 20)
        assert result.bandwidth_mbs > 0
        zero = run_pingpong(machine(), 0)
        assert zero.bandwidth_mbs == 0.0

    def test_same_rank_rejected(self):
        with pytest.raises(ValueError):
            run_pingpong(machine(), 1024, rank_a=0, rank_b=0)

    def test_bad_protocol_rejected(self):
        with pytest.raises(Exception):
            run_pingpong(machine(), 1024, protocol="warp")

    def test_str(self):
        result = run_pingpong(machine(), 1024)
        assert "pingpong" in str(result)
