"""The unified registry and the data-driven protocol-selection table.

Covers the capability metadata of every registered algorithm, the exact
crossover boundaries of the section-V selection policy (8 KiB / 256 KiB
for bcast, 64 KiB for allreduce, 8 KiB blocks for allgather), the SMP
fallbacks, the deprecated per-family shims, and the generic
``run_collective`` driver.
"""

import pytest

from repro.bench.harness import FAMILY_SPECS, run_bcast, run_collective
from repro.collectives import registry
from repro.collectives.base import CollectiveResult, InvocationBase
from repro.collectives.registry import (
    ALL_MODES,
    algorithm_info,
    families,
    get_algorithm,
    iter_algorithms,
    list_algorithms,
    select_protocol,
)
from repro.collectives.selection import SELECTION_TABLE, selectable_families
from repro.hardware.machine import Machine, Mode
from repro.util.units import KIB

QUAD211 = dict(torus_dims=(2, 1, 1), mode=Mode.QUAD)


class TestRegistryMetadata:
    def test_every_family_populated(self):
        assert families() == sorted(
            ["bcast", "allreduce", "allgather", "alltoall", "barrier",
             "gather", "reduce", "scatter"]
        )
        for family in families():
            assert list_algorithms(family), f"{family} registered nothing"

    def test_metadata_matches_module(self):
        """Each record's family and network must match the class itself."""
        for info in iter_algorithms():
            assert info.cls.name == info.name
            assert info.cls.network == info.network
            # The class must live in its family's package (barrier is a
            # plain module, the others are packages).
            assert info.cls.__module__.startswith(
                f"repro.collectives.{info.family}"
            ), f"{info.name} registered as {info.family} but lives in " \
               f"{info.cls.__module__}"

    def test_shared_address_tag_matches_naming(self):
        """The shaddr schemes — and only they — need window mappings."""
        for info in iter_algorithms():
            assert info.shared_address == ("shaddr" in info.name), info.name

    def test_only_barrier_is_timing_only(self):
        for info in iter_algorithms():
            assert info.data_carrying == (info.family != "barrier")

    def test_modes_metadata_matches_constructor_checks(self):
        """Classes restricted to a mode subset must reject other ppn."""
        machine_by_ppn = {
            1: Machine(torus_dims=(2, 1, 1), mode=Mode.SMP),
            4: Machine(**QUAD211),
        }
        for info in iter_algorithms():
            if info.modes == ALL_MODES:
                continue
            bad_ppn = next(p for p in (1, 4) if p not in info.modes)
            machine = machine_by_ppn[bad_ppn]
            spec = FAMILY_SPECS[info.family]
            with pytest.raises(ValueError):
                spec.build(info.cls, machine, 1024, None, 0, True)

    def test_capabilities_attribute_installed(self):
        cls = get_algorithm("bcast", "tree-shaddr")
        assert cls.capabilities is algorithm_info("bcast", "tree-shaddr")
        assert cls.capabilities.modes == (4,)
        assert cls.capabilities.supports_ppn(4)
        assert not cls.capabilities.supports_ppn(1)

    def test_unknown_family_and_name(self):
        with pytest.raises(KeyError):
            get_algorithm("bcast", "nope")
        with pytest.raises(KeyError):
            get_algorithm("scan", "anything")
        with pytest.raises(KeyError):
            list_algorithms("scan")

    def test_deprecated_shims_forward(self):
        assert registry.bcast_algorithm("torus-shaddr") is get_algorithm(
            "bcast", "torus-shaddr"
        )
        assert registry.list_bcast_algorithms() == list_algorithms("bcast")
        assert registry.list_barrier_algorithms() == list_algorithms("barrier")
        assert registry.reduce_algorithm(
            "reduce-torus-current"
        ) is get_algorithm("reduce", "reduce-torus-current")
        assert registry.select_bcast(1024, 4) == select_protocol(
            "bcast", 1024, 4
        )

    def test_duplicate_registration_rejected(self):
        cls = get_algorithm("bcast", "torus-shaddr")

        class Impostor:
            name = "torus-shaddr"
            network = "torus"

        with pytest.raises(ValueError, match="duplicate"):
            registry.register("bcast")(Impostor)
        # Re-decorating the same class is idempotent, not a duplicate.
        assert registry.register("bcast", shared_address=True)(cls) is cls


class TestSelectionBoundaries:
    def test_bcast_exact_crossovers(self):
        assert select_protocol("bcast", 8 * KIB, 4) == "tree-shmem"
        assert select_protocol("bcast", 8 * KIB + 1, 4) == "tree-shaddr"
        assert select_protocol("bcast", 256 * KIB, 4) == "tree-shaddr"
        assert select_protocol("bcast", 256 * KIB + 1, 4) == "torus-shaddr"

    def test_bcast_smp_fallbacks(self):
        assert select_protocol("bcast", 256 * KIB, 1) == "tree-smp"
        assert select_protocol("bcast", 256 * KIB + 1, 1) == (
            "torus-direct-put-smp"
        )

    def test_bcast_matches_historical_select_bcast(self):
        """The table reproduces the hand-written policy exactly."""
        def legacy(nbytes, ppn):
            if ppn == 1:
                return "tree-smp" if nbytes <= 256 * KIB else (
                    "torus-direct-put-smp"
                )
            if nbytes <= 8 * KIB:
                return "tree-shmem"
            if nbytes <= 256 * KIB:
                return "tree-shaddr"
            return "torus-shaddr"

        sizes = [0, 1, 256, 8 * KIB - 1, 8 * KIB, 8 * KIB + 1,
                 64 * KIB, 256 * KIB - 1, 256 * KIB, 256 * KIB + 1,
                 2 * 1024 * KIB]
        for ppn in (1, 2, 4):
            for nbytes in sizes:
                assert select_protocol("bcast", nbytes, ppn) == legacy(
                    nbytes, ppn
                ), (nbytes, ppn)

    def test_allreduce_crossover_and_smp(self):
        # 64 KiB of doubles is the last tree size; quad mode beyond it
        # moves to the shared-address torus scheme (section V-C).
        assert select_protocol("allreduce", 64 * KIB, 4) == "allreduce-tree"
        assert select_protocol("allreduce", 64 * KIB + 8, 4) == (
            "allreduce-torus-shaddr"
        )
        # The torus scheme is quad-only: other modes stay on the tree.
        for ppn in (1, 2):
            assert select_protocol("allreduce", 4 * 1024 * KIB, ppn) == (
                "allreduce-tree"
            )

    def test_allgather_crossover_and_smp(self):
        assert select_protocol("allgather", 8 * KIB, 4) == (
            "allgather-ring-current"
        )
        assert select_protocol("allgather", 8 * KIB + 1, 4) == (
            "allgather-ring-shaddr"
        )
        # SMP mode has no intra-node stage to share windows over.
        assert select_protocol("allgather", 1024 * KIB, 1) == (
            "allgather-ring-current"
        )

    def test_reduce_mode_policy(self):
        assert select_protocol("reduce", 1024, 4) == "reduce-torus-shaddr"
        for ppn in (1, 2):
            assert select_protocol("reduce", 1024, ppn) == (
                "reduce-torus-current"
            )

    def test_selected_names_are_registered_and_mode_compatible(self):
        """Every table entry resolves, and supports the ppn it's picked
        for."""
        for family, rules in SELECTION_TABLE.items():
            remaining = {1, 2, 4}  # rules match first-wins, in order
            for modes, ladder in rules:
                ppns = remaining & set(modes) if modes is not None else (
                    set(remaining)
                )
                remaining -= ppns
                for _max, name in ladder:
                    info = algorithm_info(family, name)
                    for ppn in ppns:
                        # tree-shaddr for ppn=2 predates the table and is
                        # kept verbatim (quad-only class, historical
                        # behaviour of select_bcast).
                        if (family, name, ppn) == ("bcast", "tree-shaddr", 2):
                            continue
                        assert info.supports_ppn(ppn), (family, name, ppn)

    def test_bad_inputs(self):
        with pytest.raises(KeyError):
            select_protocol("alltoall", 1024, 4)  # no policy for alltoall
        with pytest.raises(ValueError):
            select_protocol("bcast", -1, 4)
        with pytest.raises(ValueError):
            select_protocol("bcast", 1024, 0)
        assert "bcast" in selectable_families()

    def test_auto_resolution_through_run_collective(self):
        machine = Machine(**QUAD211)
        result = run_collective(machine, "bcast", "auto", 256, verify=True)
        assert result.algorithm == "tree-shmem"
        machine = Machine(**QUAD211)
        result = run_collective(machine, "allgather", "auto", 512,
                                verify=True)
        assert result.algorithm == "allgather-ring-current"

    def test_auto_without_policy_raises(self):
        machine = Machine(**QUAD211)
        with pytest.raises(KeyError):
            run_collective(machine, "alltoall", "auto", 512)


class TestGenericDriver:
    def test_wrapper_equivalence(self):
        """run_bcast is a strict thin wrapper over run_collective."""
        a = run_bcast(Machine(**QUAD211), "torus-fifo", 32 * KIB, iters=2)
        b = run_collective(Machine(**QUAD211), "bcast", "torus-fifo",
                           32 * KIB, iters=2)
        assert a == b

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            run_collective(Machine(**QUAD211), "scan", "anything", 1)

    def test_barrier_rejects_verify(self):
        with pytest.raises(ValueError):
            run_collective(Machine(**QUAD211), "barrier", "barrier-gi",
                           verify=True)

    def test_barrier_bandwidth_is_zero_not_an_error(self):
        result = run_collective(Machine(**QUAD211), "barrier", "barrier-gi")
        assert result.nbytes == 0
        assert result.bandwidth_mbs == 0.0
        assert "0.0 MB/s" in str(result)

    def test_session_shares_windows_across_invocations(self):
        session = InvocationBase.session()
        machine = Machine(**QUAD211)
        cls = get_algorithm("bcast", "tree-shaddr")
        first = session.adopt(cls(machine, 0, 1024))
        second = session.adopt(cls(machine, 0, 1024))
        assert first.windows_by_rank is second.windows_by_rank
        assert first.windows_by_rank is session.windows_by_rank


class TestCollectiveResultGuards:
    def test_zero_elapsed(self):
        result = CollectiveResult(
            algorithm="x", nbytes=1024, nprocs=2, elapsed_us=0.0
        )
        assert result.bandwidth_mbs == 0.0

    def test_zero_bytes(self):
        result = CollectiveResult(
            algorithm="x", nbytes=0, nprocs=2, elapsed_us=12.5
        )
        assert result.bandwidth_mbs == 0.0


class TestMachineCheckRank:
    def test_public_name(self):
        machine = Machine(**QUAD211)
        machine.check_rank(0)
        with pytest.raises(ValueError):
            machine.check_rank(machine.nprocs)

    def test_deprecated_alias(self):
        machine = Machine(**QUAD211)
        assert Machine._check_rank is Machine.check_rank
        with pytest.raises(ValueError):
            machine._check_rank(-1)
