"""Cross-validation of the analytic model against the simulator.

The simulator must never beat a closed-form ceiling, and at large messages
(where pipeline-fill effects amortize) it should approach it.
"""

import pytest

from repro.analysis import (
    Prediction,
    predict_torus_bcast,
    predict_tree_bcast,
    predict_tree_latency,
)
from repro.bench import run_bcast
from repro.hardware import BGPParams, Machine, Mode
from repro.util.units import MIB

DIMS = (4, 4, 4)


class TestPredictionMechanics:
    def test_bottleneck_is_minimum(self):
        p = Prediction()
        p.add("a", 100.0)
        p.add("b", 50.0)
        assert p.bottleneck.name == "b"
        assert p.value == 50.0

    def test_empty_prediction_rejected(self):
        with pytest.raises(ValueError):
            Prediction().bottleneck

    def test_str_marks_bottleneck(self):
        p = Prediction()
        p.add("a", 100.0)
        p.add("b", 50.0)
        assert "bottleneck" in str(p)

    def test_unknown_algorithms_rejected(self):
        params = BGPParams()
        with pytest.raises(KeyError):
            predict_torus_bcast(params, "nope", DIMS, 1024)
        with pytest.raises(KeyError):
            predict_tree_bcast(params, "nope", 1024)
        with pytest.raises(KeyError):
            predict_tree_latency(params, 64, 8, "nope")


class TestTorusBandwidthCrossValidation:
    @pytest.mark.parametrize(
        "algorithm,mode",
        [
            ("torus-direct-put", Mode.QUAD),
            ("torus-direct-put-smp", Mode.SMP),
            ("torus-fifo", Mode.QUAD),
            ("torus-shaddr", Mode.QUAD),
        ],
    )
    def test_simulation_within_analytic_ceiling(self, algorithm, mode):
        params = BGPParams()
        machine = Machine(torus_dims=DIMS, mode=mode, params=params)
        measured = run_bcast(machine, algorithm, 2 * MIB).bandwidth_mbs
        predicted = predict_torus_bcast(
            params, algorithm, DIMS, 2 * MIB, ppn=mode.processes_per_node
        ).value
        assert measured <= predicted * 1.02
        # Steady state approaches the ceiling (fill costs the remainder).
        assert measured >= 0.55 * predicted

    def test_direct_put_bottleneck_is_the_dma(self):
        pred = predict_torus_bcast(BGPParams(), "torus-direct-put", DIMS,
                                   2 * MIB)
        assert "DMA" in pred.bottleneck.name

    def test_fifo_bottleneck_is_the_staging_copy(self):
        pred = predict_torus_bcast(BGPParams(), "torus-fifo", DIMS, 2 * MIB)
        assert "staging" in pred.bottleneck.name

    def test_paper_ratio_reproduced_analytically(self):
        """The 2.9x headline falls out of the closed-form model alone."""
        params = BGPParams()
        shaddr = predict_torus_bcast(params, "torus-shaddr", DIMS, 2 * MIB)
        dput = predict_torus_bcast(params, "torus-direct-put", DIMS, 2 * MIB)
        assert 2.5 <= shaddr.value / dput.value <= 4.3

    def test_l3_knee_lowers_the_shaddr_ceiling(self):
        params = BGPParams()
        small = predict_torus_bcast(params, "torus-shaddr", DIMS, 1 * MIB)
        large = predict_torus_bcast(params, "torus-shaddr", DIMS, 8 * MIB)
        assert large.value < small.value


class TestTreeBandwidthCrossValidation:
    @pytest.mark.parametrize(
        "algorithm,mode",
        [
            ("tree-smp", Mode.SMP),
            ("tree-dma-fifo", Mode.QUAD),
            ("tree-dma-direct-put", Mode.QUAD),
            ("tree-shaddr", Mode.QUAD),
        ],
    )
    def test_simulation_within_analytic_ceiling(self, algorithm, mode):
        params = BGPParams()
        machine = Machine(torus_dims=(2, 2, 2), mode=mode, params=params)
        measured = run_bcast(machine, algorithm, 2 * MIB).bandwidth_mbs
        predicted = predict_tree_bcast(
            params, algorithm, 2 * MIB, ppn=mode.processes_per_node
        ).value
        assert measured <= predicted * 1.02
        assert measured >= 0.5 * predicted

    def test_single_core_serialization_halves_throughput(self):
        params = BGPParams()
        smp = predict_tree_bcast(params, "tree-smp", 1 * MIB, ppn=1)
        dma = predict_tree_bcast(params, "tree-dma-direct-put", 1 * MIB)
        assert dma.value == pytest.approx(smp.value / 2.0)


class TestTreeLatencyCrossValidation:
    @pytest.mark.parametrize(
        "algorithm,mode",
        [
            ("tree-smp", Mode.SMP),
            ("tree-shmem", Mode.QUAD),
            ("tree-dma-fifo", Mode.QUAD),
        ],
    )
    def test_latency_model_matches_simulation(self, algorithm, mode):
        params = BGPParams()
        machine = Machine(torus_dims=(4, 4, 4), mode=mode, params=params)
        measured = run_bcast(machine, algorithm, 8, iters=2).elapsed_us
        predicted = predict_tree_latency(params, 64, 8, algorithm)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_latency_grows_with_machine_size(self):
        params = BGPParams()
        small = predict_tree_latency(params, 64, 8)
        large = predict_tree_latency(params, 2048, 8)
        assert large > small
