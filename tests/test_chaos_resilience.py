"""Resilience-layer tests: retry/backoff, protocol fallback, chaos harness."""

import json

import pytest

from repro.bench.chaos import (
    _machine_factory,
    chaos_campaign,
    run_resilient_collective,
)
from repro.bench.harness import run_collective
from repro.collectives.base import CollectiveResult
from repro.collectives.registry import fallback_chain
from repro.hardware.fault_schedule import (
    CounterStall,
    FaultSchedule,
    WindowFault,
)
from repro.hardware.machine import Machine, Mode
from repro.sim.engine import TransientFaultError

QUAD = _machine_factory((2, 2, 1), Mode.QUAD)


class TestFallbackChain:
    def test_quad_chains_end_on_dma(self):
        assert fallback_chain("bcast", "torus-shaddr", 4) == [
            "torus-shaddr", "torus-fifo", "torus-direct-put",
        ]
        assert fallback_chain("bcast", "tree-shaddr", 4) == [
            "tree-shaddr", "tree-shmem", "tree-dma-fifo",
            "tree-dma-direct-put",
        ]

    def test_chain_filters_unsupported_modes(self):
        # tree-shmem and the tree DMA schemes need ppn >= 2; in SMP mode
        # the tree-smp rung falls straight to the SMP direct-put.
        assert fallback_chain("bcast", "tree-smp", 1) == [
            "tree-smp", "torus-direct-put-smp",
        ]

    def test_bottom_rung_has_no_fallback(self):
        assert fallback_chain("bcast", "torus-direct-put", 4) == [
            "torus-direct-put",
        ]

    def test_allreduce_chain(self):
        assert fallback_chain("allreduce", "allreduce-torus-shaddr", 4) == [
            "allreduce-torus-shaddr", "allreduce-tree",
            "allreduce-torus-current",
        ]


class TestRetryRecovery:
    def test_short_window_fault_absorbed_by_retries(self):
        schedule = FaultSchedule([WindowFault(start=0.0, duration=20.0)])
        result = run_resilient_collective(
            QUAD, "bcast", "torus-shaddr", 64 * 1024,
            schedule=schedule, verify=True,
        )
        assert result.algorithm == "torus-shaddr"  # no fallback needed
        assert result.retries > 0
        assert result.fallbacks == []
        assert result.recovery_time == 0.0

    def test_retry_exhaustion_falls_back_one_rung(self):
        schedule = FaultSchedule([WindowFault(start=0.0, duration=None)])
        result = run_resilient_collective(
            QUAD, "bcast", "torus-shaddr", 64 * 1024,
            schedule=schedule, verify=True,
        )
        assert result.algorithm == "torus-fifo"
        assert result.fallbacks == ["torus-shaddr"]
        assert result.retries > 0
        assert result.recovery_time > 0.0

    def test_full_ladder_shaddr_to_fifo_to_dma(self):
        schedule = FaultSchedule([
            WindowFault(start=0.0, duration=None),
            CounterStall(start=0.0, duration=None),
        ])
        result = run_resilient_collective(
            QUAD, "bcast", "torus-shaddr", 64 * 1024,
            schedule=schedule, verify=True, deadline_us=5000.0,
        )
        assert result.algorithm == "torus-direct-put"
        assert result.fallbacks == ["torus-shaddr", "torus-fifo"]
        assert result.recovery_time > 0.0

    def test_healthy_run_reports_no_resilience_activity(self):
        result = run_resilient_collective(
            QUAD, "bcast", "torus-shaddr", 64 * 1024, verify=True,
        )
        assert result.retries == 0
        assert result.fallbacks == []
        assert result.recovery_time == 0.0
        # ... and the resilience suffix stays out of the healthy repr.
        assert "fallbacks" not in str(result)

    def test_fallback_result_str_mentions_recovery(self):
        schedule = FaultSchedule([WindowFault(start=0.0, duration=None)])
        result = run_resilient_collective(
            QUAD, "bcast", "torus-shaddr", 64 * 1024,
            schedule=schedule, verify=True,
        )
        text = str(result)
        assert "fallbacks=torus-shaddr" in text
        assert "retries=" in text


class TestDeadline:
    def test_stalled_counters_miss_deadline(self):
        machine = QUAD()
        FaultSchedule([CounterStall(start=0.0, duration=None)]).install(
            machine
        )
        with pytest.raises(TransientFaultError):
            run_collective(
                machine, "bcast", "torus-fifo", 64 * 1024,
                verify=True, deadline_us=2000.0,
            )

    def test_healthy_run_unaffected_by_deadline(self):
        with_deadline = run_collective(
            QUAD(), "bcast", "torus-shaddr", 64 * 1024, deadline_us=1e6,
        )
        without = run_collective(QUAD(), "bcast", "torus-shaddr", 64 * 1024)
        assert with_deadline.elapsed_us == without.elapsed_us


class TestNoFaultBitIdentity:
    def test_counter_stall_wiring_does_not_change_healthy_timing(self):
        """make_counter's stall hook must be invisible while no fault is
        installed — same event ordering, bit-identical timings."""
        a = run_collective(QUAD(), "bcast", "torus-fifo", 64 * 1024, iters=3)
        b = run_collective(QUAD(), "bcast", "torus-fifo", 64 * 1024, iters=3)
        assert a.iterations_us == b.iterations_us

    def test_result_gains_resilience_fields_with_defaults(self):
        result = CollectiveResult(
            algorithm="x", nbytes=1, nprocs=1, elapsed_us=1.0,
        )
        assert result.retries == 0
        assert result.fallbacks == []
        assert result.recovery_time == 0.0


class TestChaosCampaign:
    def test_smoke_campaign_is_clean_and_replayable(self, tmp_path):
        out = tmp_path / "BENCH_robustness.json"
        report = chaos_campaign(
            seed=0, smoke=True, dims=(2, 2, 1), out_path=str(out),
            verbose=False,
        )
        assert report["summary"]["payload_mismatches"] == 0
        assert report["summary"]["full_ladder_walks"] >= 2
        on_disk = json.loads(out.read_text())
        assert on_disk["summary"] == report["summary"]
        # Replaying the same seed reproduces the campaign exactly.
        again = chaos_campaign(
            seed=0, smoke=True, dims=(2, 2, 1), out_path=None, verbose=False,
        )
        assert again["runs"] == report["runs"]
        assert again["ladder"] == report["ladder"]

    def test_ladder_scenarios_complete_on_dma(self):
        report = chaos_campaign(
            seed=3, smoke=True, dims=(2, 2, 1), out_path=None, verbose=False,
        )
        completed = {r["algorithm"]: r["completed_with"]
                     for r in report["ladder"]}
        assert completed["torus-shaddr"] == "torus-direct-put"
        assert completed["tree-shaddr"] == "tree-dma-fifo"


class TestScheduleReinstall:
    def test_remaining_timeline_shifts_across_attempts(self):
        # A window that opened at t=100 for 1000us, reinstalled at
        # campaign time 600, must still be open with 500us left.
        schedule = FaultSchedule([
            WindowFault(start=100.0, duration=1000.0, slots_available=0),
        ])
        machine = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        assert schedule.install(machine, at=600.0) == 1
        machine.engine.run(until=10.0)
        assert machine.faults.window_slot_cap(None) == 0
        machine.engine.run(until=600.0)
        assert machine.faults.window_slot_cap(None) is None
