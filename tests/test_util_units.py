"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    KIB,
    MIB,
    bandwidth_mbs,
    format_bytes,
    format_time_us,
    parse_size,
)


class TestParseSize:
    def test_plain_int(self):
        assert parse_size(512) == 512

    def test_zero(self):
        assert parse_size(0) == 0

    def test_kilobytes(self):
        assert parse_size("128K") == 128 * KIB

    def test_megabytes(self):
        assert parse_size("2M") == 2 * MIB

    def test_suffix_variants(self):
        assert parse_size("4KB") == parse_size("4KiB") == parse_size("4k")

    def test_bytes_suffix(self):
        assert parse_size("37B") == 37

    def test_fractional(self):
        assert parse_size("1.5K") == 1536

    def test_fractional_non_integral_rejected(self):
        with pytest.raises(ValueError):
            parse_size("1.0001K")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("12Q")

    def test_roundtrip_with_format(self):
        for text in ["1K", "8K", "128K", "1M", "2M", "4M", "1G"]:
            assert format_bytes(parse_size(text)) == text


class TestFormatBytes:
    def test_small(self):
        assert format_bytes(768) == "768"

    def test_exact_kib(self):
        assert format_bytes(131072) == "128K"

    def test_non_multiple_stays_raw(self):
        assert format_bytes(1500) == "1500"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatTime:
    def test_microseconds(self):
        assert format_time_us(5.831) == "5.83us"

    def test_milliseconds(self):
        assert format_time_us(1208.6) == "1.209ms"

    def test_seconds(self):
        assert format_time_us(2.5e6) == "2.5000s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_time_us(-0.1)


class TestBandwidth:
    def test_mb_per_second_units(self):
        # 1e6 bytes in 1e3 us -> 1000 MB/s
        assert bandwidth_mbs(1_000_000, 1000.0) == pytest.approx(1000.0)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_mbs(1, 0.0)
