"""Property-based end-to-end checks: random machines, roots, and sizes."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import run_allreduce, run_bcast
from repro.hardware import Machine, Mode

small_dims = st.sampled_from([(1, 1, 1), (2, 1, 1), (2, 2, 1), (3, 2, 1)])
sizes = st.sampled_from([1, 17, 999, 8192, 40_000])


class TestBcastEndToEnd:
    @given(dims=small_dims, nbytes=sizes, data=st.data())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_shaddr_delivers_any_configuration(self, dims, nbytes, data):
        machine = Machine(torus_dims=dims, mode=Mode.QUAD)
        # Torus algorithms designate the root process as its node's master.
        root_node = data.draw(st.integers(0, machine.nnodes - 1))
        root = machine.node_ranks(root_node)[0]
        run_bcast(
            machine, "torus-shaddr", nbytes, root=root, iters=1, verify=True
        )

    @given(dims=small_dims, nbytes=sizes)
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fifo_delivers_any_configuration(self, dims, nbytes):
        machine = Machine(torus_dims=dims, mode=Mode.QUAD)
        run_bcast(machine, "torus-fifo", nbytes, iters=1, verify=True)


class TestAllreduceEndToEnd:
    @given(
        dims=small_dims,
        count=st.sampled_from([1, 13, 1000, 5000]),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_shaddr_sums_any_configuration(self, dims, count):
        machine = Machine(torus_dims=dims, mode=Mode.QUAD)
        run_allreduce(
            machine, "allreduce-torus-shaddr", count, iters=1, verify=True
        )


class TestDualMode:
    @pytest.mark.parametrize(
        "runner_algorithm",
        [
            ("bcast", "torus-direct-put"),
            ("bcast", "torus-fifo"),
            ("bcast", "torus-shaddr"),
            ("bcast", "tree-shmem"),
            ("allreduce", "allreduce-torus-current"),
            ("allreduce", "allreduce-tree"),
        ],
    )
    def test_dual_mode_verifies(self, runner_algorithm):
        kind, algorithm = runner_algorithm
        machine = Machine(torus_dims=(2, 2, 1), mode=Mode.DUAL)
        if kind == "bcast":
            run_bcast(machine, algorithm, 20_000, iters=1, verify=True)
        else:
            run_allreduce(machine, algorithm, 2500, iters=1, verify=True)
