"""Solver-mode resolution semantics (:mod:`repro.sim.config`).

The flow network used to snapshot ``REPRO_SIM_SLOWPATH``/``REPRO_SIM_DEBUG``
at construction, so flipping an environment variable between runs silently
did nothing.  These tests pin the repaired contract: environment-derived
modes are re-read at call time (the harness refreshes before every run),
while explicitly configured modes stay pinned across refreshes.
"""

import pytest

from repro.bench.harness import run_collective
from repro.hardware.machine import Machine, Mode
from repro.sim import Engine, FlowNetwork
from repro.sim.config import (
    ENV_ANALYTIC,
    ENV_DEBUG,
    ENV_SLOWPATH,
    ENV_VECTOR,
    SolverConfig,
    analytic_enabled,
    env_flag,
    resolve_solver_config,
)

ALL_ENV = (ENV_SLOWPATH, ENV_DEBUG, ENV_VECTOR, ENV_ANALYTIC)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in ALL_ENV:
        monkeypatch.delenv(name, raising=False)


# ---------------------------------------------------------------------------
# env_flag parsing
# ---------------------------------------------------------------------------

def test_env_flag_parses_only_zero_and_one(monkeypatch):
    assert env_flag(ENV_VECTOR, True) is True
    assert env_flag(ENV_VECTOR, False) is False
    monkeypatch.setenv(ENV_VECTOR, "1")
    assert env_flag(ENV_VECTOR, False) is True
    monkeypatch.setenv(ENV_VECTOR, "0")
    assert env_flag(ENV_VECTOR, True) is False
    # stray values keep the documented default instead of guessing
    monkeypatch.setenv(ENV_VECTOR, "yes")
    assert env_flag(ENV_VECTOR, True) is True
    assert env_flag(ENV_VECTOR, False) is False


# ---------------------------------------------------------------------------
# resolve_solver_config: defaults, env, pinning
# ---------------------------------------------------------------------------

def test_defaults_are_incremental_vectorized_no_debug():
    config = resolve_solver_config()
    assert (config.incremental, config.debug, config.vectorized) == (
        True, False, True,
    )
    assert not (
        config.incremental_pinned
        or config.debug_pinned
        or config.vectorized_pinned
    )
    assert config.mode == "vectorized"


def test_mode_labels():
    assert SolverConfig(False, False, False).mode == "slowpath"
    assert SolverConfig(True, False, False).mode == "incremental"
    assert SolverConfig(True, False, True).mode == "vectorized"
    # slowpath wins the label even if the vector knob is nominally on
    assert SolverConfig(False, False, True).mode == "slowpath"


def test_env_variables_steer_unpinned_fields(monkeypatch):
    monkeypatch.setenv(ENV_SLOWPATH, "1")
    monkeypatch.setenv(ENV_VECTOR, "0")
    monkeypatch.setenv(ENV_DEBUG, "1")
    config = resolve_solver_config()
    assert config.mode == "slowpath"
    assert config.debug is True
    assert config.vectorized is False


def test_explicit_arguments_pin_across_refreshes(monkeypatch):
    pinned = resolve_solver_config(incremental=False, vectorized=False)
    assert pinned.mode == "slowpath"
    assert pinned.incremental_pinned and pinned.vectorized_pinned
    # Environment now says the opposite; the pins must win on refresh...
    monkeypatch.setenv(ENV_SLOWPATH, "0")
    monkeypatch.setenv(ENV_VECTOR, "1")
    refreshed = resolve_solver_config(base=pinned)
    assert refreshed.mode == "slowpath"
    assert refreshed.vectorized is False
    # ...while the unpinned debug field keeps tracking the environment.
    monkeypatch.setenv(ENV_DEBUG, "1")
    assert resolve_solver_config(base=pinned).debug is True


def test_unpinned_fields_track_environment_between_refreshes(monkeypatch):
    base = resolve_solver_config()
    assert base.vectorized is True
    monkeypatch.setenv(ENV_VECTOR, "0")
    assert resolve_solver_config(base=base).vectorized is False
    monkeypatch.delenv(ENV_VECTOR)
    assert resolve_solver_config(base=base).vectorized is True


# ---------------------------------------------------------------------------
# FlowNetwork.configure / refresh_config
# ---------------------------------------------------------------------------

def test_flownet_refresh_sees_env_change_after_construction(monkeypatch):
    net = FlowNetwork(Engine())
    assert net.solver_mode == "vectorized"
    monkeypatch.setenv(ENV_SLOWPATH, "1")
    # Construction-time snapshot would miss this; refresh must not.
    net.refresh_config()
    assert net.solver_mode == "slowpath"
    monkeypatch.delenv(ENV_SLOWPATH)
    net.refresh_config()
    assert net.solver_mode == "vectorized"


def test_flownet_explicit_configure_survives_refresh(monkeypatch):
    net = FlowNetwork(Engine())
    net.configure(incremental=False, vectorized=False)
    assert net.solver_mode == "slowpath"
    monkeypatch.setenv(ENV_SLOWPATH, "0")
    net.refresh_config()
    assert net.solver_mode == "slowpath"


def test_switching_to_incremental_recarves_inflight_flows():
    """configure() mid-run must rebuild the component cache so the
    incremental path picks up flows the slowpath created."""

    def run(switch):
        engine = Engine()
        net = FlowNetwork(engine, incremental=not switch, debug=True)
        port = net.add_resource("mem", 8.0)
        done = {}

        def proc(name, nbytes, start):
            if start:
                yield engine.timeout(start)
            yield net.transfer({port: 1.0}, nbytes, name=name)
            done[name] = engine.now

        def flip():
            yield engine.timeout(5.0)
            if switch:
                net.configure(incremental=True)

        for name, nbytes, start in [("a", 256.0, 0.0), ("b", 512.0, 2.0),
                                    ("c", 128.0, 8.0)]:
            engine.spawn(proc(name, nbytes, start))
        engine.spawn(flip())
        engine.run()
        return done

    assert run(switch=True) == run(switch=False)


def test_harness_rereads_env_per_run(monkeypatch):
    """Satellite regression: flipping REPRO_SIM_SLOWPATH *after* machine
    construction must steer the very next run (manifest records it)."""
    machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
    result = run_collective(machine, "bcast", "tree-shaddr", 4096)
    assert result.manifest.solver_mode == "vectorized"
    monkeypatch.setenv(ENV_SLOWPATH, "1")
    result = run_collective(machine, "bcast", "tree-shaddr", 4096)
    assert result.manifest.solver_mode == "slowpath"
    monkeypatch.delenv(ENV_SLOWPATH)
    monkeypatch.setenv(ENV_VECTOR, "0")
    result = run_collective(machine, "bcast", "tree-shaddr", 4096)
    assert result.manifest.solver_mode == "incremental"


# ---------------------------------------------------------------------------
# analytic_enabled
# ---------------------------------------------------------------------------

def test_analytic_enabled_is_opt_in(monkeypatch):
    assert analytic_enabled() is False
    monkeypatch.setenv(ENV_ANALYTIC, "1")
    assert analytic_enabled() is True
    # explicit argument beats the environment in both directions
    assert analytic_enabled(False) is False
    monkeypatch.delenv(ENV_ANALYTIC)
    assert analytic_enabled(True) is True
