"""The runtime observability plane (``repro.telemetry.runtime``).

The invariants under test mirror docs/observability.md ("Runtime
observability"):

* **console compatibility** — the default console format reproduces the
  historical stderr shapes (``[prefix] message`` / bare messages), and
  ``REPRO_RUNTIME_LOG=0`` restores today's behavior exactly: legacy
  lines still print byte-identically, new structured events are silent;
* **metrics discipline** — counters are monotonic, histograms use the
  fixed bucket bounds, the Prometheus exposition round-trips through
  :func:`parse_prometheus`, and a name cannot change kind;
* **span model** — a child span shares its parent's trace id, carries a
  fresh span id, and points ``parent_id`` at the parent span; with the
  plane off the context manager passes the parent through untouched and
  records nothing;
* **flight recorder** — every structured event lands in the ring, and
  dumps only happen when a destination is configured;
* **stats thread-safety** — concurrent ``record_*`` calls on
  :class:`ServiceStats` never lose counts, and the live histograms
  agree with the ring totals.
"""

import json
import threading
import urllib.request

import pytest

from repro.serve.service import ServiceStats
from repro.telemetry.runtime import (
    DEFAULT_BUCKETS,
    ENV_FLIGHT_DIR,
    ENV_LOG_LEVEL,
    ENV_RUNTIME_LOG,
    MetricsRegistry,
    RUNTIME_TRACE_PID,
    SpanStore,
    dump_flight_record,
    flight_snapshot,
    mint_trace,
    parse_prometheus,
    record_span,
    runtime_enabled,
    runtime_log,
    runtime_log_mode,
    runtime_trace_document,
    serve_metrics_http,
    span,
    write_runtime_trace,
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(ENV_RUNTIME_LOG, raising=False)
    monkeypatch.delenv(ENV_LOG_LEVEL, raising=False)
    monkeypatch.delenv(ENV_FLIGHT_DIR, raising=False)


# -- structured logging ----------------------------------------------------

class TestRuntimeLogger:
    def test_console_prefix_shape(self, capsys):
        runtime_log("farm.server", prefix="farm").info(
            "lease", "leased chunk 3", legacy=True,
        )
        assert capsys.readouterr().err == "[farm] leased chunk 3\n"

    def test_console_bare_message(self, capsys):
        runtime_log("serve.cache").warning(
            "cache_stale", "serve cache: skipping stale entry", legacy=True,
        )
        assert capsys.readouterr().err == (
            "serve cache: skipping stale entry\n"
        )

    def test_console_structured_event_renders_fields(self, capsys):
        runtime_log("farm.server", prefix="farm").info(
            "lease_expired", worker="w-1", chunk=4,
        )
        assert capsys.readouterr().err == (
            "[farm] lease_expired worker=w-1 chunk=4\n"
        )

    def test_json_mode_emits_parseable_records(self, capsys, monkeypatch):
        monkeypatch.setenv(ENV_RUNTIME_LOG, "json")
        assert runtime_log_mode() == "json"
        runtime_log("farm.worker", prefix="w-9").info(
            "chunk_done", "w-9: chunk 2 done", chunk=2, points=8,
        )
        record = json.loads(capsys.readouterr().err)
        assert record["component"] == "farm.worker"
        assert record["level"] == "info"
        assert record["event"] == "chunk_done"
        assert record["msg"] == "w-9: chunk 2 done"
        assert record["chunk"] == 2 and record["points"] == 8
        assert isinstance(record["ts"], float)

    def test_off_mode_keeps_legacy_lines_byte_identical(
            self, capsys, monkeypatch):
        monkeypatch.setenv(ENV_RUNTIME_LOG, "0")
        assert not runtime_enabled()
        logger = runtime_log("farm.server", prefix="farm")
        logger.info("resume", "resuming campaign abc123", legacy=True)
        logger.info("lease_expired", worker="w-1")  # new event: silent
        assert capsys.readouterr().err == "[farm] resuming campaign abc123\n"

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", "OFF"])
    def test_off_spellings(self, value, monkeypatch):
        monkeypatch.setenv(ENV_RUNTIME_LOG, value)
        assert runtime_log_mode() == "off"

    def test_global_level_filters(self, capsys, monkeypatch):
        monkeypatch.setenv(ENV_LOG_LEVEL, "warning")
        logger = runtime_log("serve")
        logger.info("below", "not shown")
        logger.warning("above", "shown")
        assert capsys.readouterr().err == "shown\n"

    def test_logger_level_overrides_global(self, capsys, monkeypatch):
        monkeypatch.setenv(ENV_LOG_LEVEL, "debug")
        quiet = runtime_log("farm.server", prefix="farm", level="warning")
        quiet.info("lease", "progress line", legacy=True)
        quiet.warning("bad", "warning line", legacy=True)
        assert capsys.readouterr().err == "[farm] warning line\n"

    def test_off_mode_still_respects_levels(self, capsys, monkeypatch):
        # --quiet farm servers never printed progress lines; =0 must not
        # resurrect them.
        monkeypatch.setenv(ENV_RUNTIME_LOG, "0")
        quiet = runtime_log("farm.server", prefix="farm", level="warning")
        quiet.info("lease", "progress line", legacy=True)
        assert capsys.readouterr().err == ""

    def test_filtered_events_still_reach_flight_ring(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG_LEVEL, "error")
        logger = runtime_log("test.flight.filtered")
        logger.debug("quiet_event", detail=1)
        events = flight_snapshot("test.flight.filtered")
        assert [event["event"] for event in events] == ["quiet_event"]


# -- metrics registry ------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits")
        counter.inc()
        counter.inc(2, tier="memo")
        counter.inc(tier="memo")
        assert counter.value() == 1
        assert counter.value(tier="memo") == 3

    def test_counter_refuses_decrease(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_buckets_cumulative_in_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "latency")
        for value in (0.0005, 0.002, 0.002, 120.0):
            histogram.observe(value)
        assert histogram.summary() == {
            "count": 4, "sum": pytest.approx(120.0045)
        }
        parsed = parse_prometheus(registry.dump_metrics())
        buckets = parsed["lat_seconds_bucket"]
        assert buckets["le=0.001"] == 1
        assert buckets["le=0.0025"] == 3
        assert buckets["le=60"] == 3  # cumulative, 120s overflows
        assert buckets["le=+Inf"] == 4
        assert parsed["lat_seconds_count"][""] == 4

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(5, op="predict")
        registry.gauge("b").set(7)
        registry.histogram("h_seconds").observe(0.3)
        snap = registry.snapshot()
        assert snap["counters"]["a_total"] == {"op=predict": 5.0}
        assert snap["gauges"]["b"] == {"": 7.0}
        series = snap["histograms"]["h_seconds"][""]
        assert series["count"] == 1
        assert series["sum"] == pytest.approx(0.3)
        assert series["buckets"]["+Inf"] == 0
        assert len(series["buckets"]) == len(DEFAULT_BUCKETS) + 1

    def test_exposition_round_trips_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("answers_total", "answers by tier").inc(
            4, tier="memo",
        )
        registry.counter("answers_total").inc(1, tier="cold")
        registry.gauge("pool_machines", "warm pool size").set(3)
        text = registry.dump_metrics()
        assert "# TYPE answers_total counter" in text
        assert "# HELP answers_total answers by tier" in text
        parsed = parse_prometheus(text)
        assert parsed["answers_total"] == {"tier=memo": 4.0, "tier=cold": 1.0}
        assert parsed["pool_machines"][""] == 3.0

    def test_set_total_syncs_external_tally(self):
        counter = MetricsRegistry().counter("synced_total")
        counter.set_total(41, op="sweep")
        counter.set_total(42, op="sweep")
        assert counter.value(op="sweep") == 42

    def test_metrics_http_endpoint(self):
        registry = MetricsRegistry()
        registry.counter("scraped_total").inc(9)
        httpd = serve_metrics_http("127.0.0.1", 0, registry.dump_metrics)
        try:
            port = httpd.server_address[1]
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics") as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain"
                )
                body = response.read().decode()
        finally:
            httpd.shutdown()
            httpd.server_close()
        assert parse_prometheus(body)["scraped_total"][""] == 9.0


# -- trace spans -----------------------------------------------------------

class TestSpans:
    def test_child_chains_under_parent(self):
        store = SpanStore()
        with span("outer", "serve", store=store) as outer:
            with span("inner", "parallel", parent=outer.ctx,
                      store=store) as inner:
                inner.set(points=3)
        inner_span, outer_span = sorted(
            store.snapshot(), key=lambda item: item["name"],
        )
        assert outer_span["parent_id"] is None
        assert inner_span["trace_id"] == outer_span["trace_id"]
        assert inner_span["parent_id"] == outer_span["span_id"]
        assert inner_span["span_id"] != outer_span["span_id"]
        assert inner_span["attrs"] == {"points": 3}
        assert outer_span["end_s"] >= outer_span["start_s"]

    def test_disabled_passes_parent_through_and_records_nothing(
            self, monkeypatch):
        monkeypatch.setenv(ENV_RUNTIME_LOG, "0")
        store = SpanStore()
        parent = mint_trace()
        with span("outer", "serve", parent=parent, store=store) as active:
            assert active.ctx is parent
            active.set(tier="memo")  # must not raise
        assert len(store) == 0
        assert record_span("w", "farm", 0.0, 1.0, parent=parent,
                           store=store) is None

    def test_record_span_requires_parent(self):
        store = SpanStore()
        assert record_span("w", "farm", 0.0, 1.0, parent=None,
                           store=store) is None
        recorded = record_span(
            "w", "farm.worker", 1.0, 2.0, parent=mint_trace(),
            span_id="abcd", store=store, worker="w-1",
        )
        assert recorded["span_id"] == "abcd"
        assert recorded["attrs"] == {"worker": "w-1"}
        assert len(store) == 1

    def test_store_is_bounded(self):
        store = SpanStore(max_spans=4)
        for index in range(10):
            store.record({"span_id": str(index)})
        assert [item["span_id"] for item in store.snapshot()] == (
            ["6", "7", "8", "9"]
        )

    def test_trace_document_shape(self):
        parent = mint_trace()
        store = SpanStore()
        with span("serve.sweep", "serve", parent=parent, store=store) as sp:
            record_span(
                "farm.chunk.0", "farm.worker", 0.0, 0.5, parent=sp.ctx,
                store=store, worker="w-1",
            )
        document = runtime_trace_document(store.snapshot())
        events = document["traceEvents"]
        spans_x = [event for event in events if event["ph"] == "X"]
        meta = [event for event in events if event["ph"] == "M"]
        assert all(event["pid"] == RUNTIME_TRACE_PID for event in events)
        assert {event["args"]["name"] for event in meta} >= {
            "runtime spans", "serve", "farm.worker w-1",
        }
        by_name = {event["name"]: event for event in spans_x}
        sweep = by_name["serve.sweep"]
        chunk = by_name["farm.chunk.0"]
        assert chunk["args"]["trace_id"] == sweep["args"]["trace_id"]
        assert chunk["args"]["parent_id"] == sweep["args"]["span_id"]
        assert chunk["args"]["worker"] == "w-1"
        assert document["otherData"]["kind"] == "runtime-spans"

    def test_write_runtime_trace_loads_back(self, tmp_path):
        store = SpanStore()
        with span("a", "serve", store=store):
            pass
        out = tmp_path / "runtime.json"
        count = write_runtime_trace(store.snapshot(), str(out))
        assert count == 1
        document = json.loads(out.read_text())
        assert document["displayTimeUnit"] == "ms"


# -- flight recorder -------------------------------------------------------

class TestFlightRecorder:
    def test_dump_writes_events_and_trailer(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_FLIGHT_DIR, str(tmp_path))
        logger = runtime_log("test.flight.dump")
        logger.error("boom", "it broke", chunk=7)
        path = dump_flight_record("unit-test", component="test.flight.dump")
        assert path is not None and path.startswith(str(tmp_path))
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert lines[-1]["kind"] == "flight"
        assert lines[-1]["reason"] == "unit-test"
        assert any(line.get("event") == "boom" for line in lines[:-1])

    def test_dump_is_noop_without_destination(self):
        runtime_log("test.flight.noop").error("boom")
        assert dump_flight_record("x", component="test.flight.noop") is None

    def test_dump_is_noop_when_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_RUNTIME_LOG, "0")
        monkeypatch.setenv(ENV_FLIGHT_DIR, str(tmp_path))
        assert dump_flight_record("x") is None


# -- ServiceStats thread-safety -------------------------------------------

class TestServiceStatsConcurrency:
    def test_no_lost_updates_under_contention(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry=registry)
        tiers = ("memo", "cold", "warm", "analytic")
        rounds = 200

        def hammer(tier):
            for _ in range(rounds):
                stats.record_tier(tier)
                stats.record_latency(0.001, tier=tier)
                stats.record_request("predict")
                stats.record_coalesced()
                stats.record_error()

        threads = [threading.Thread(target=hammer, args=(tier,))
                   for tier in tiers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snap = stats.snapshot()
        for tier in tiers:
            assert snap["tiers"][tier] == rounds
        assert snap["requests"]["predict"] == rounds * len(tiers)
        assert snap["coalesced"] == rounds * len(tiers)
        assert snap["errors"] == rounds * len(tiers)
        # Live histograms saw every sample the rings saw.
        histogram = registry.histogram("serve_request_latency_seconds")
        assert histogram.summary()["count"] == rounds * len(tiers)
        for tier in tiers:
            by_tier = registry.histogram("serve_tier_latency_seconds")
            assert by_tier.summary(tier=tier)["count"] == rounds

    def test_per_tier_windows_separate_fast_from_slow(self):
        stats = ServiceStats()
        for _ in range(10):
            stats.record_latency(0.001, tier="memo")
        stats.record_latency(0.5, tier="cold")
        by_tier = stats.latency_by_tier()
        assert by_tier["memo"]["count"] == 10
        assert by_tier["cold"]["count"] == 1
        assert by_tier["cold"]["p50_ms"] > by_tier["memo"]["p50_ms"]
