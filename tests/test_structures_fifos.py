"""Unit, threaded, and property tests for the real PtP and Bcast FIFOs."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import BcastFifo, PtPFifo


class TestPtPFifoBasics:
    def test_single_enqueue_dequeue(self):
        f = PtPFifo(slots=4, slot_bytes=16)
        f.enqueue(b"hello", meta=1)
        payload, meta = f.dequeue()
        assert payload == b"hello"
        assert meta == 1

    def test_fifo_order(self):
        f = PtPFifo(slots=4, slot_bytes=16)
        for i in range(4):
            f.enqueue(bytes([i]))
        assert [f.dequeue()[0] for _ in range(4)] == [
            b"\x00", b"\x01", b"\x02", b"\x03"
        ]

    def test_wraparound(self):
        f = PtPFifo(slots=2, slot_bytes=8)
        for i in range(10):
            f.enqueue(bytes([i]))
            assert f.dequeue()[0] == bytes([i])

    def test_oversized_payload_rejected(self):
        f = PtPFifo(slots=2, slot_bytes=4)
        with pytest.raises(ValueError):
            f.enqueue(b"too long!")

    def test_full_timeout(self):
        f = PtPFifo(slots=1, slot_bytes=4)
        f.enqueue(b"x")
        with pytest.raises(TimeoutError):
            f.enqueue(b"y", timeout=0.05)

    def test_empty_timeout(self):
        f = PtPFifo(slots=1, slot_bytes=4)
        with pytest.raises(TimeoutError):
            f.dequeue(timeout=0.05)

    def test_numpy_payload(self):
        f = PtPFifo(slots=2, slot_bytes=64)
        data = np.arange(16, dtype=np.uint8)
        f.enqueue(data)
        payload, _ = f.dequeue()
        assert payload == data.tobytes()

    def test_len(self):
        f = PtPFifo(slots=4, slot_bytes=4)
        assert len(f) == 0
        f.enqueue(b"a")
        f.enqueue(b"b")
        assert len(f) == 2
        f.dequeue()
        assert len(f) == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PtPFifo(slots=0, slot_bytes=1)
        with pytest.raises(ValueError):
            PtPFifo(slots=1, slot_bytes=0)


class TestPtPFifoThreaded:
    def test_mpmc_no_loss_no_duplication(self):
        f = PtPFifo(slots=8, slot_bytes=16)
        nproducers, nconsumers, per = 4, 3, 60
        total = nproducers * per
        out, lock = [], threading.Lock()

        def producer(base):
            for k in range(per):
                f.enqueue(b"p", meta=base + k, timeout=10)

        def consumer(count):
            for _ in range(count):
                _, meta = f.dequeue(timeout=10)
                with lock:
                    out.append(meta)

        counts = [total // nconsumers] * nconsumers
        counts[0] += total - sum(counts)
        threads = [
            threading.Thread(target=producer, args=(i * 1000,))
            for i in range(nproducers)
        ] + [threading.Thread(target=consumer, args=(c,)) for c in counts]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = sorted(i * 1000 + k for i in range(nproducers)
                          for k in range(per))
        assert sorted(out) == expected

    def test_single_producer_order_preserved(self):
        f = PtPFifo(slots=4, slot_bytes=8)
        got = []

        def consumer():
            for _ in range(100):
                got.append(f.dequeue(timeout=10)[1])

        t = threading.Thread(target=consumer)
        t.start()
        for i in range(100):
            f.enqueue(b"x", meta=i, timeout=10)
        t.join()
        assert got == list(range(100))


class TestBcastFifoBasics:
    def test_every_consumer_sees_every_element(self):
        f = BcastFifo(slots=4, slot_bytes=8, consumers=3)
        cursors = [f.consumer() for _ in range(3)]
        f.enqueue(b"a", meta=0)
        f.enqueue(b"b", meta=1)
        for c in cursors:
            assert c.read(timeout=1) == (b"a", 0)
            assert c.read(timeout=1) == (b"b", 1)

    def test_slot_not_reused_until_all_read(self):
        f = BcastFifo(slots=1, slot_bytes=4, consumers=2)
        c1, c2 = f.consumer(), f.consumer()
        f.enqueue(b"x")
        c1.read(timeout=1)
        # c2 has not read yet: the producer must block.
        with pytest.raises(TimeoutError):
            f.enqueue(b"y", timeout=0.05)
        c2.read(timeout=1)
        f.enqueue(b"y", timeout=1)  # now it fits

    def test_metadata_multiplexing(self):
        # The paper multiplexes six connections through one FIFO using
        # (bytes, connection id) metadata.
        f = BcastFifo(slots=8, slot_bytes=16, consumers=1)
        c = f.consumer()
        for conn in range(6):
            f.enqueue(bytes([conn]) * 4, meta=("conn", conn, 4))
        for conn in range(6):
            payload, meta = c.read(timeout=1)
            assert meta == ("conn", conn, 4)
            assert payload == bytes([conn]) * 4

    def test_len_counts_unretired(self):
        f = BcastFifo(slots=4, slot_bytes=4, consumers=2)
        c1, c2 = f.consumer(), f.consumer()
        f.enqueue(b"a")
        assert len(f) == 1
        c1.read(timeout=1)
        assert len(f) == 1  # still unretired
        c2.read(timeout=1)
        assert len(f) == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BcastFifo(slots=1, slot_bytes=1, consumers=0)


class TestBcastFifoThreaded:
    @pytest.mark.parametrize("slots,nmsgs", [(2, 40), (8, 100)])
    def test_all_consumers_receive_in_order(self, slots, nmsgs):
        f = BcastFifo(slots=slots, slot_bytes=32, consumers=4)
        results = [[] for _ in range(4)]

        def consume(i):
            cursor = f.consumer()
            for _ in range(nmsgs):
                payload, meta = cursor.read(timeout=10)
                results[i].append((payload, meta))

        threads = [
            threading.Thread(target=consume, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for k in range(nmsgs):
            f.enqueue(bytes([k % 251]) * (k % 31 + 1), meta=k, timeout=10)
        for t in threads:
            t.join()
        expected = [
            (bytes([k % 251]) * (k % 31 + 1), k) for k in range(nmsgs)
        ]
        for i in range(4):
            assert results[i] == expected


class TestFifosUnderStalls:
    """Wraparound edge cases with a stalled party in the loop.

    A stalled consumer (the analogue of an injected counter stall: the
    core that should retire slots stops for a while) forces the producer
    to ride the head of a tiny FIFO, so every slot index wraps many
    times while a reader is parked mid-stream.
    """

    def test_ptp_wraparound_survives_stalled_consumer(self):
        import time

        f = PtPFifo(slots=2, slot_bytes=8)
        nmsgs = 50
        out = []

        def consume():
            for k in range(nmsgs):
                if k == 10:  # stall mid-stream, after the first wraparound
                    time.sleep(0.05)
                out.append(f.dequeue(timeout=10))

        t = threading.Thread(target=consume)
        t.start()
        for k in range(nmsgs):
            f.enqueue(bytes([k % 251]), meta=k, timeout=10)
        t.join()
        assert out == [(bytes([k % 251]), k) for k in range(nmsgs)]

    def test_bcast_wraparound_with_straggling_reader(self):
        import time

        f = BcastFifo(slots=2, slot_bytes=8, consumers=2)
        nmsgs = 30
        results = [[], []]

        def consume(i, stall_every):
            cursor = f.consumer()
            for k in range(nmsgs):
                if stall_every and k % stall_every == 0:
                    time.sleep(0.005)
                results[i].append(cursor.read(timeout=10))

        threads = [
            threading.Thread(target=consume, args=(0, 0)),
            threading.Thread(target=consume, args=(1, 7)),  # straggler
        ]
        for t in threads:
            t.start()
        for k in range(nmsgs):
            f.enqueue(bytes([k % 251]) * 2, meta=k, timeout=10)
        for t in threads:
            t.join()
        expected = [(bytes([k % 251]) * 2, k) for k in range(nmsgs)]
        assert results[0] == expected
        assert results[1] == expected

    def test_bcast_producer_blocked_on_wrapped_slot_recovers(self):
        """The producer times out on a wrapped-but-unretired slot, then
        succeeds once the stalled reader catches up — no slot is ever
        overwritten early."""
        f = BcastFifo(slots=2, slot_bytes=4, consumers=1)
        cursor = f.consumer()
        f.enqueue(b"a", meta=0)
        f.enqueue(b"b", meta=1)
        # Both slots occupied and the reader is stalled: slot 0 cannot be
        # reused yet.
        with pytest.raises(TimeoutError):
            f.enqueue(b"c", meta=2, timeout=0.05)
        assert cursor.read(timeout=1) == (b"a", 0)
        f.enqueue(b"c", meta=2, timeout=1)  # wraps into slot 0
        assert cursor.read(timeout=1) == (b"b", 1)
        assert cursor.read(timeout=1) == (b"c", 2)


class TestFifoProperties:
    @given(
        payloads=st.lists(
            st.binary(min_size=1, max_size=16), min_size=1, max_size=40
        ),
        slots=st.integers(1, 8),
        consumers=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_bcast_fifo_delivers_everything_in_order(
        self, payloads, slots, consumers
    ):
        """Sequential (single-thread) model check over arbitrary content."""
        f = BcastFifo(slots=slots, slot_bytes=16, consumers=consumers)
        cursors = [f.consumer() for _ in range(consumers)]
        remaining = list(enumerate(payloads))
        # Interleave: fill up to capacity, then drain one from each cursor.
        produced = consumed = 0
        reads = [[] for _ in range(consumers)]
        while consumed < len(payloads):
            while produced < len(payloads) and len(f) < slots:
                idx, data = remaining[produced]
                f.enqueue(data, meta=idx, timeout=1)
                produced += 1
            for i, c in enumerate(cursors):
                reads[i].append(c.read(timeout=1))
            consumed += 1
        for i in range(consumers):
            assert [m for _, m in reads[i]] == list(range(len(payloads)))
            assert [p for p, _ in reads[i]] == payloads

    @given(
        payloads=st.lists(
            st.binary(min_size=0, max_size=8), min_size=1, max_size=50
        ),
        slots=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_ptp_fifo_preserves_order_single_consumer(self, payloads, slots):
        f = PtPFifo(slots=slots, slot_bytes=8)
        out = []
        i = 0
        while i < len(payloads) or len(f) > 0:
            while i < len(payloads) and len(f) < slots:
                f.enqueue(payloads[i], meta=i, timeout=1)
                i += 1
            out.append(f.dequeue(timeout=1))
        assert [p for p, _ in out] == payloads
        assert [m for _, m in out] == list(range(len(payloads)))
