"""Analytic steady-state fast path vs the DES (:mod:`repro.sim.analytic`).

The fast path predicts per-point elapsed times in closed form for
fault-free steady-state sweeps of the three headline protocols.  These
tests pin the contract end to end on a 2x2x2 machine:

* served points match a full DES run of the same point within the law's
  probe tolerance (lattice points to float noise);
* off-lattice sizes, undersized messages, and the allreduce beyond-m0
  region *miss* — the DES runs and the result is exactly the unassisted
  one;
* every legality gate (verification, faults, telemetry, tracing,
  non-steady runs, deadlines, non-default params) forces the DES;
* the fast path is opt-in (argument or ``REPRO_SIM_ANALYTIC=1``) and
  its hit/miss/calibration accounting is observable via ``stats()``.
"""

import math

import pytest

from repro.bench.harness import run_collective
from repro.hardware.fault_schedule import FaultSchedule, LinkFlap
from repro.hardware.machine import Machine, Mode
from repro.hardware.params import BGPParams
from repro.sim import Engine, analytic

#: matches the calibrator's probe gate (PROBE_RTOL=5e-4) with headroom
REL_TOL = 1e-3

DIMS = (2, 2, 2)
PW = BGPParams().pipeline_width  # 65536


def _machine():
    return Machine(torus_dims=DIMS, mode=Mode.QUAD)


def _run(family, algorithm, x, **kwargs):
    return run_collective(_machine(), family, algorithm, x, **kwargs)


@pytest.fixture(scope="module", autouse=True)
def _fresh_calibrations():
    # One clean slate per module; the calibration cache is then shared
    # across tests (that sharing is itself part of the contract).
    analytic.clear_cache()
    analytic.reset_stats()
    yield
    analytic.clear_cache()
    analytic.reset_stats()


# ---------------------------------------------------------------------------
# served points match the DES
# ---------------------------------------------------------------------------

#: (family, algorithm, x, law segment exercised)
HIT_POINTS = [
    ("bcast", "tree-shaddr", PW // 4 + 1024, "C1 interior"),
    ("bcast", "tree-shaddr", 2 * PW, "even chunk lattice, anchor"),
    ("bcast", "tree-shaddr", 6 * PW, "even chunk lattice, probe"),
    ("bcast", "tree-shaddr", 3 * PW, "odd chunk lattice, anchor"),
    ("bcast", "torus-shaddr", 2 * PW, "m0 interior"),
    ("bcast", "torus-shaddr", 8 * PW, "m1, fractional per-color tail"),
    ("allreduce", "allreduce-torus-shaddr", (3 * PW) // 32, "m0 anchor"),
    ("allreduce", "allreduce-torus-shaddr", 16384, "m0 interior"),
]


@pytest.mark.parametrize(
    "family,algorithm,x",
    [p[:3] for p in HIT_POINTS],
    ids=[f"{p[1]}-x{p[2]}" for p in HIT_POINTS],
)
def test_served_point_matches_des(family, algorithm, x):
    des = _run(family, algorithm, x, iters=3, steady_state=True)
    assert des.manifest.analytic is False
    fast = _run(family, algorithm, x, iters=3, steady_state=True,
                analytic=True)
    assert fast.manifest.analytic is True
    assert math.isclose(fast.elapsed_us, des.elapsed_us, rel_tol=REL_TOL)
    for ours, theirs in zip(fast.iterations_us, des.iterations_us):
        assert math.isclose(ours, theirs, rel_tol=REL_TOL)


def test_served_iterations_are_cold_plus_identical_warm():
    result = _run("bcast", "tree-shaddr", 2 * PW, iters=5, analytic=True)
    assert result.manifest.analytic is True
    assert len(result.iterations_us) == 5
    cold, warm = result.iterations_us[0], result.iterations_us[1:]
    assert warm == [warm[0]] * 4  # bit-identical by construction
    assert result.elapsed_us == sum([cold] + warm) / 5


def test_calibration_is_cached_across_points():
    analytic.clear_cache()
    analytic.reset_stats()
    for x in (PW // 4 + 512, PW // 4 + 2048, PW // 2 - 512):
        result = _run("bcast", "tree-shaddr", x, analytic=True)
        assert result.manifest.analytic is True
    counters = analytic.stats()
    assert counters["hits"] == 3
    # one C1 calibration serves every C1 point in the same memory regime
    assert counters["calibrations"] == 1


# ---------------------------------------------------------------------------
# misses fall back to the DES
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "family,algorithm,x,reason",
    [
        # multi-chunk tree bcast with a partial tail chunk: off-lattice
        ("bcast", "tree-shaddr", 3 * PW + 5000, "partial-tail-chunk"),
        ("bcast", "tree-shaddr", 8, "x-too-small"),
        # allreduce beyond one chunk per color is deliberately DES-only
        ("allreduce", "allreduce-torus-shaddr", PW, "beyond-m0"),
    ],
)
def test_uncovered_point_runs_des(family, algorithm, x, reason):
    analytic.reset_stats()
    des = _run(family, algorithm, x, iters=2)
    fast = _run(family, algorithm, x, iters=2, analytic=True)
    assert fast.manifest.analytic is False
    assert fast.elapsed_us == des.elapsed_us  # bit-equal: the DES ran
    assert fast.iterations_us == des.iterations_us
    assert analytic.stats()["miss_reasons"].get(reason, 0) >= 1


# ---------------------------------------------------------------------------
# legality gates
# ---------------------------------------------------------------------------

def test_gate_verify_and_non_steady_force_des():
    for kwargs in ({"verify": True}, {"steady_state": False},
                   {"deadline_us": 1e9}):
        result = _run("bcast", "tree-shaddr", 2 * PW, iters=2,
                      analytic=True, **kwargs)
        assert result.manifest.analytic is False, kwargs


def test_gate_faults_force_des():
    schedule = FaultSchedule(
        [LinkFlap(start=5.0, duration=50.0, node=1, factor=0.5)]
    )
    plain, requested = [], []
    for analytic_flag in (None, True):
        machine = _machine()
        schedule.install(machine)
        result = run_collective(
            machine, "bcast", "torus-shaddr", 2 * PW, iters=2,
            analytic=analytic_flag,
        )
        assert result.manifest.analytic is False
        (plain if analytic_flag is None else requested).append(
            (result.elapsed_us, tuple(result.iterations_us))
        )
    # requesting the fast path on a faulted machine changes nothing
    assert plain == requested


def test_gate_telemetry_and_trace_force_des():
    machine = _machine()
    machine.attach_telemetry()
    result = run_collective(
        machine, "bcast", "tree-shaddr", 2 * PW, analytic=True
    )
    assert result.manifest.analytic is False

    machine = Machine(torus_dims=DIMS, mode=Mode.QUAD,
                      engine=Engine(trace=True))
    result = run_collective(
        machine, "bcast", "tree-shaddr", 2 * PW, analytic=True
    )
    assert result.manifest.analytic is False


def test_gate_algorithm_without_law_forces_des():
    result = _run("bcast", "torus-fifo", 2 * PW, analytic=True)
    assert result.manifest.analytic is False


def test_gate_reason_non_default_params():
    machine = _machine()
    info = type("Info", (), {"analytic": "tree-lattice", "name": "t"})()
    common = dict(verify=False, payload=None, deadline_us=None,
                  steady_state=None)
    assert analytic.gate_reason(machine, info, **common) is None
    slowed = Machine(
        torus_dims=DIMS, mode=Mode.QUAD,
        params=BGPParams(mpi_overhead=2.5),
    )
    assert (
        analytic.gate_reason(slowed, info, **common) == "non-default-params"
    )


# ---------------------------------------------------------------------------
# opt-in plumbing
# ---------------------------------------------------------------------------

def test_analytic_is_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_ANALYTIC", raising=False)
    result = _run("bcast", "tree-shaddr", 2 * PW)
    assert result.manifest.analytic is False


def test_env_opt_in_and_explicit_override(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_ANALYTIC", "1")
    result = _run("bcast", "tree-shaddr", 2 * PW)
    assert result.manifest.analytic is True
    result = _run("bcast", "tree-shaddr", 2 * PW, analytic=False)
    assert result.manifest.analytic is False


def test_law_names_cover_registered_protocols():
    from repro.collectives.registry import algorithm_info

    laws = analytic.law_names()
    for family, name in [
        ("bcast", "tree-shaddr"),
        ("bcast", "torus-shaddr"),
        ("allreduce", "allreduce-torus-shaddr"),
    ]:
        assert algorithm_info(family, name).analytic in laws
    # no other algorithm claims a law it can't have
    assert algorithm_info("bcast", "torus-fifo").analytic is None
