"""Tests for the stage-level telemetry subsystem.

Covers the recorder's role attribution (the paper's core-specialization
split), the bit-identical guarantee (telemetry is purely observational),
run manifests with their regression gates, the report tables, and the
``repro report`` / ``repro trace`` CLI subcommands.
"""

import copy
import json
import pickle

import pytest

from repro.bench import run_allreduce, run_bcast
from repro.cli import main
from repro.hardware import Machine, Mode
from repro.telemetry import (
    DEFAULT_TOLERANCE,
    RunManifest,
    TelemetryRecorder,
    ThreadTelemetry,
    compare_bench,
    compare_manifests,
    compare_with_baseline_file,
    load_baseline,
    save_baseline,
)
from repro.telemetry.report import format_report as format_telemetry_report


def quad_machine(dims=(2, 2, 2)):
    return Machine(torus_dims=dims, mode=Mode.QUAD)


def recorded_run(family="bcast", algorithm="tree-shaddr", x=256 * 1024,
                 dims=(2, 2, 2), **kwargs):
    machine = quad_machine(dims)
    recorder = machine.attach_telemetry()
    if family == "bcast":
        result = run_bcast(machine, algorithm, x, **kwargs)
    else:
        result = run_allreduce(machine, algorithm, x, **kwargs)
    return machine, recorder, result


class TestRoleAttribution:
    """Section V-B's quad-mode broadcast: 'one core ... injects ... a
    second core pulls the packets ... the remaining two cores copy'."""

    def test_tree_bcast_quad_role_split(self):
        machine, recorder, _ = recorded_run()
        rollups = recorder.rollups()
        nnodes = machine.nnodes
        assert rollups["ranks.injector"] == nnodes
        assert rollups["ranks.receiver"] == nnodes
        assert rollups["ranks.copier"] == 2 * nnodes

    def test_tree_bcast_split_holds_per_node(self):
        _, recorder, _ = recorded_run()
        per_node = {}
        for rank, role in recorder.roles.items():
            node = recorder.role_nodes[rank]
            per_node.setdefault(node, []).append(role)
        for node, roles in per_node.items():
            assert sorted(roles) == [
                "copier", "copier", "injector", "receiver",
            ], f"node {node} role split {roles}"

    def test_copiers_move_the_payload(self):
        nbytes = 256 * 1024
        machine, recorder, _ = recorded_run(x=nbytes)
        rollups = recorder.rollups()
        # Each non-root node's two copiers copy the payload out of the
        # receive buffer; rank 2 additionally makes the extra copy.
        assert rollups["bytes_copied.copier"] >= nbytes * (machine.nnodes - 1)
        per_role = sum(
            v for k, v in rollups.items() if k.startswith("bytes_copied.")
        )
        assert rollups["bytes_copied"] == per_role

    def test_allreduce_shaddr_roles(self):
        _, recorder, _ = recorded_run(
            family="allreduce", algorithm="allreduce-torus-shaddr", x=48 * 1024
        )
        rollups = recorder.rollups()
        roles = set(recorder.roles.values())
        assert "protocol-core" in roles
        assert {"reduce-core.c0", "reduce-core.c1", "reduce-core.c2"} <= roles
        assert rollups["ranks.protocol-core"] == 8  # one per node

    def test_stage_summary_names_the_pipeline(self):
        _, recorder, _ = recorded_run()
        stages = recorder.stage_summary()
        for stage in ("tree.inject", "tree.receive", "shaddr.copy-out",
                      "shaddr.extra-copy"):
            assert stage in stages
            assert stages[stage]["bytes"] > 0

    def test_protocol_metrics_recorded(self):
        _, recorder, _ = recorded_run()
        rollups = recorder.rollups()
        assert rollups["counter_advances"] > 0
        assert rollups["counter_polls"] > 0
        assert rollups["window_maps"] > 0
        assert rollups["stall_us.waiting-on-counter"] > 0


class TestBitIdentical:
    """The recorder only observes: enabled and disabled runs must produce
    exactly the same simulated timings (not approximately — exactly)."""

    BCASTS = ["tree-shaddr", "torus-shaddr", "torus-fifo",
              "torus-direct-put", "tree-shmem"]

    @pytest.mark.parametrize("algorithm", BCASTS)
    def test_bcast_elapsed_identical(self, algorithm):
        bare = run_bcast(quad_machine(), algorithm, 128 * 1024)
        machine = quad_machine()
        machine.attach_telemetry()
        recorded = run_bcast(machine, algorithm, 128 * 1024)
        assert recorded.elapsed_us == bare.elapsed_us
        assert recorded.iterations_us == bare.iterations_us

    @pytest.mark.parametrize(
        "algorithm", ["allreduce-torus-shaddr", "allreduce-torus-current"]
    )
    def test_allreduce_elapsed_identical(self, algorithm):
        bare = run_allreduce(quad_machine(), algorithm, 24 * 1024)
        machine = quad_machine()
        machine.attach_telemetry()
        recorded = run_allreduce(machine, algorithm, 24 * 1024)
        assert recorded.elapsed_us == bare.elapsed_us

    def test_detach_restores_silence(self):
        machine = quad_machine()
        recorder = machine.attach_telemetry()
        assert machine.detach_telemetry() is recorder
        run_bcast(machine, "tree-shaddr", 64 * 1024)
        assert recorder.rollups() == {}


class TestRunManifest:
    def manifest(self, **overrides):
        fields = dict(
            family="bcast", algorithm="tree-shaddr", dims=(2, 2, 2),
            mode="QUAD", ppn=4, nprocs=32, x=262144, nbytes=262144,
            iters=1, seed=1234, verify=False, elapsed_us=500.0,
            bandwidth_mbs=524.3,
            rollups={"counter_polls": 100.0, "bytes_copied": 786432.0},
        )
        fields.update(overrides)
        return RunManifest(**fields)

    def test_attached_by_harness(self):
        _, recorder, result = recorded_run()
        manifest = result.manifest
        assert manifest is not None
        assert manifest.algorithm == "tree-shaddr"
        assert manifest.dims == (2, 2, 2)
        assert manifest.mode == "QUAD"
        assert manifest.elapsed_us == result.elapsed_us
        assert manifest.rollups == recorder.rollups()
        # git_rev is resolved lazily, never inside the timed run.
        assert manifest.git_rev is None
        assert manifest.stamped().git_rev is not None

    def test_no_recorder_empty_rollups(self):
        result = run_bcast(quad_machine(), "tree-shaddr", 64 * 1024)
        assert result.manifest.rollups == {}

    def test_spec_key(self):
        assert self.manifest().spec_key == (
            "bcast/tree-shaddr/2x2x2/quad/x262144/i1"
        )

    def test_dict_roundtrip(self):
        m = self.manifest()
        clone = RunManifest.from_dict(json.loads(json.dumps(m.to_dict())))
        assert clone == m

    def test_result_with_manifest_pickles(self):
        _, _, result = recorded_run()
        clone = pickle.loads(pickle.dumps(result))
        assert clone.manifest.spec_key == result.manifest.spec_key
        assert clone.manifest.rollups == result.manifest.rollups


class TestRegressionGate:
    def run_manifest(self):
        _, _, result = recorded_run()
        return result.manifest

    def test_identical_manifests_pass(self):
        m = self.run_manifest()
        assert compare_manifests(m, m) == []

    def test_reproducible_runs_pass(self):
        assert compare_manifests(self.run_manifest(),
                                 self.run_manifest()) == []

    def test_flags_elapsed_drift_beyond_tolerance(self):
        current, baseline = self.run_manifest(), self.run_manifest()
        baseline.elapsed_us *= 1.25
        drifts = compare_manifests(current, baseline)
        assert any("elapsed_us" in line for line in drifts)

    def test_tolerates_drift_within_band(self):
        current, baseline = self.run_manifest(), self.run_manifest()
        baseline.elapsed_us *= 1.0 + DEFAULT_TOLERANCE / 2
        drifts = compare_manifests(current, baseline)
        assert not any("elapsed_us" in line for line in drifts)

    def test_flags_rollup_drift(self):
        current, baseline = self.run_manifest(), self.run_manifest()
        baseline.rollups["counter_polls"] *= 2
        drifts = compare_manifests(current, baseline)
        assert any("counter_polls" in line for line in drifts)

    def test_flags_identity_mismatch(self):
        current, baseline = self.run_manifest(), self.run_manifest()
        baseline.algorithm = "torus-shaddr"
        drifts = compare_manifests(current, baseline)
        assert drifts and "algorithm" in drifts[0]

    def test_flags_missing_and_new_metrics(self):
        current, baseline = self.run_manifest(), self.run_manifest()
        gone = next(iter(baseline.rollups))
        del current.rollups[gone]
        current.rollups["brand_new"] = 1.0
        drifts = "\n".join(compare_manifests(current, baseline))
        assert "missing now" in drifts
        assert "absent from baseline" in drifts

    def test_baseline_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        m = self.run_manifest()
        save_baseline(path, [m])
        document = load_baseline(path)
        assert m.spec_key in document["manifests"]
        assert compare_with_baseline_file(m, path) == []

    def test_baseline_file_missing_key(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        save_baseline(path, [])
        drifts = compare_with_baseline_file(self.run_manifest(), path)
        assert drifts and "no baseline" in drifts[0]


class TestBenchGate:
    def bench(self):
        point = {"x": 1024, "wall_s": 0.1, "elapsed_us": 100.0}
        entry = {
            "smoke": True,
            "sweeps": {"bcast": {"points": [dict(point)]}},
        }
        return {
            "suite": "core",
            "entries": {
                "base": copy.deepcopy(entry),
                "new": copy.deepcopy(entry),
            },
        }

    def test_identical_entries_pass(self):
        assert compare_bench(self.bench(), "base", "new") == []

    def test_wall_clock_never_gated(self):
        bench = self.bench()
        bench["entries"]["new"]["sweeps"]["bcast"]["points"][0]["wall_s"] = 99
        assert compare_bench(bench, "base", "new") == []

    def test_simulated_us_gated(self):
        bench = self.bench()
        point = bench["entries"]["new"]["sweeps"]["bcast"]["points"][0]
        point["elapsed_us"] = 150.0
        drifts = compare_bench(bench, "base", "new")
        assert drifts and "elapsed_us" in drifts[0]

    def test_smoke_full_mismatch_refused(self):
        bench = self.bench()
        bench["entries"]["new"]["smoke"] = False
        drifts = compare_bench(bench, "base", "new")
        assert drifts and "not comparable" in drifts[0]

    def test_missing_label_reported(self):
        drifts = compare_bench(self.bench(), "base", "nonexistent")
        assert drifts and "missing" in drifts[0]


class TestReportRendering:
    def test_report_tables(self):
        _, recorder, result = recorded_run()
        text = format_telemetry_report(result.manifest.stamped(), recorder)
        assert "per-role breakdown" in text
        assert "injector" in text and "receiver" in text and "copier" in text
        assert "shaddr.copy-out" in text
        assert "counter polls" in text
        assert result.manifest.spec_key in text

    def test_empty_recorder_renders(self):
        manifest = RunManifest(
            family="bcast", algorithm="x", dims=(1, 1, 1), mode="SMP",
            ppn=1, nprocs=1, x=0, nbytes=0, iters=1, seed=0, verify=False,
            elapsed_us=0.0, bandwidth_mbs=0.0,
        )
        text = format_telemetry_report(manifest, TelemetryRecorder())
        assert "no role activity" in text
        assert "no protocol activity" in text


class TestThreadTelemetry:
    def test_counts(self):
        tel = ThreadTelemetry()
        tel.record("fifo_fai")
        tel.record("fifo_fai", 2)
        assert tel.rollups() == {"fifo_fai": 3}


class TestCli:
    ARGS = ["--family", "bcast", "--algorithm", "tree-shaddr",
            "--size", "128K", "--dims", "2x2x2"]

    def test_report_smoke(self, capsys):
        assert main(["report"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "per-role breakdown" in out
        assert "injector" in out
        assert "protocol metrics" in out

    def test_report_gate_roundtrip(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(
            ["report"] + self.ARGS + ["--write-baseline", baseline]
        ) == 0
        assert main(["report"] + self.ARGS + ["--compare", baseline]) == 0
        assert "manifest gate OK" in capsys.readouterr().out

    def test_report_gate_flags_drift(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(
            ["report"] + self.ARGS + ["--write-baseline", baseline]
        ) == 0
        document = json.loads((tmp_path / "baseline.json").read_text())
        key = next(iter(document["manifests"]))
        document["manifests"][key]["elapsed_us"] *= 1.5
        (tmp_path / "baseline.json").write_text(json.dumps(document))
        assert main(["report"] + self.ARGS + ["--compare", baseline]) == 1
        assert "manifest gate FAILED" in capsys.readouterr().out

    def test_check_bench_requires_labels(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"entries": {}}))
        assert main(["report", "--check-bench", str(bench)]) == 2

    def test_trace_smoke(self, tmp_path, capsys):
        out_path = str(tmp_path / "trace.json")
        assert main(["trace"] + self.ARGS + ["--out", out_path]) == 0
        document = json.loads((tmp_path / "trace.json").read_text())
        pids = {e["pid"] for e in document["traceEvents"]}
        assert {1, 2, 3} <= pids  # flows, core roles, counters
        labels = [
            e["args"]["name"] for e in document["traceEvents"]
            if e.get("name") == "thread_name" and e["pid"] == 2
        ]
        assert any("injector" in label for label in labels)

    def test_trace_no_telemetry(self, tmp_path, capsys):
        out_path = str(tmp_path / "trace.json")
        args = ["trace"] + self.ARGS + ["--out", out_path, "--no-telemetry"]
        assert main(args) == 0
        document = json.loads((tmp_path / "trace.json").read_text())
        assert {e["pid"] for e in document["traceEvents"]} == {1}
