"""Tests for the Communicator's extension-collective methods."""

import pytest

from repro import Communicator, Machine, Mode


def comm(dims=(2, 1, 1), mode=Mode.QUAD):
    return Communicator(Machine(torus_dims=dims, mode=mode))


class TestCommunicatorExtensions:
    def test_reduce_auto_quad(self):
        result = comm().reduce(count=2048, verify=True)
        assert result.algorithm == "reduce-torus-shaddr"

    def test_reduce_auto_falls_back_below_quad(self):
        result = comm(mode=Mode.DUAL).reduce(count=1024, verify=True)
        assert result.algorithm == "reduce-torus-current"

    def test_gather_accepts_size_strings(self):
        result = comm().gather(block_bytes="4K", verify=True)
        assert result.nbytes == 4096 * 8

    def test_scatter(self):
        result = comm().scatter(block_bytes="2K", verify=True)
        assert result.algorithm == "scatter-ring-shaddr"

    def test_allgather(self):
        result = comm().allgather(block_bytes="2K", verify=True)
        assert result.algorithm == "allgather-ring-shaddr"

    def test_barrier_algorithms(self):
        c = comm(dims=(2, 2, 1))
        gi = c.barrier()
        tree = c.barrier("barrier-tree")
        torus = c.barrier("barrier-torus")
        assert 0 < gi < tree
        assert gi < torus

    def test_explicit_algorithm_override(self):
        result = comm().reduce(
            count=1024, algorithm="reduce-torus-current", verify=True
        )
        assert result.algorithm == "reduce-torus-current"


class TestPublicApiSurface:
    def test_p2p_exported(self):
        from repro.mpi import PingPongResult, run_pingpong, select_protocol

        assert select_protocol(1) == "eager"
        result = run_pingpong(
            Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD), 1024
        )
        assert isinstance(result, PingPongResult)

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
