"""Three-way solver equivalence: slowpath / incremental / vectorized.

The fair-share solver has three altitudes (``docs/performance.md``): the
from-scratch reference traversal, the component-cache incremental path,
and the numpy fill kernel on top of it.  These tests pin the contract
that all three produce bit-identical results — on randomized flow graphs,
and through real collectives with mid-window capacity faults — and that
``compare_bench`` refuses to diff BENCH entries recorded under different
solvers unless explicitly allowed.

The vector kernel only engages on components with at least
``_VECTOR_MIN_FLOWS`` flows, so these tests drop the threshold to zero
(``vector_kernel_forced``) — otherwise every 2x2x2 graph would silently
take the scalar path and the "vectorized" leg would test nothing.
"""

import contextlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.flownet as flownet_mod
from repro.bench.harness import run_collective
from repro.hardware.fault_schedule import (
    FaultSchedule,
    LinkFlap,
    NodeSlowdown,
    TreePortFlap,
)
from repro.hardware.machine import Machine, Mode
from repro.sim import Engine, FlowNetwork
from repro.telemetry import bench_entry_solver, compare_bench

#: solver label -> FlowNetwork.configure pins (explicit, so they survive
#: the harness's per-run refresh_config)
SOLVERS = {
    "slowpath": {"incremental": False, "vectorized": False},
    "incremental": {"incremental": True, "vectorized": False},
    "vectorized": {"incremental": True, "vectorized": True},
}


@contextlib.contextmanager
def vector_kernel_forced():
    """Drop the vector-kernel size threshold so tiny graphs exercise it."""
    old = flownet_mod._VECTOR_MIN_FLOWS
    flownet_mod._VECTOR_MIN_FLOWS = 0
    try:
        yield
    finally:
        flownet_mod._VECTOR_MIN_FLOWS = old


# ---------------------------------------------------------------------------
# randomized flow graphs
# ---------------------------------------------------------------------------

@st.composite
def flow_schedules(draw):
    """Random resources plus staggered transfers and a capacity flip.

    Small integer pools keep progressive filling in exact float
    territory — the regime the simulator itself operates in.
    """
    n_resources = draw(st.integers(min_value=1, max_value=5))
    capacities = [
        float(draw(st.integers(min_value=1, max_value=64)))
        for _ in range(n_resources)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=10))
    flows = []
    for _ in range(n_flows):
        subset = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_resources - 1),
                min_size=1,
                max_size=min(3, n_resources),
                unique=True,
            )
        )
        usage = {
            index: float(draw(st.integers(min_value=1, max_value=3)))
            for index in subset
        }
        nbytes = float(draw(st.integers(min_value=1, max_value=4096)))
        cap = draw(
            st.one_of(
                st.none(), st.integers(min_value=1, max_value=32).map(float)
            )
        )
        start = float(draw(st.integers(min_value=0, max_value=50)))
        flows.append((start, nbytes, cap, usage))
    change = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=1, max_value=40),  # when
                st.integers(min_value=0, max_value=n_resources - 1),
                st.integers(min_value=1, max_value=64),  # new capacity
            ),
        )
    )
    return capacities, flows, change


def _simulate(capacities, flows, change, knobs):
    with vector_kernel_forced():
        engine = Engine()
        # debug=True makes the vectorized leg dual-run every fill against
        # the scalar kernel (and checks accumulators on the others).
        net = FlowNetwork(engine, debug=True, **knobs)
        resources = [
            net.add_resource(f"r{i}", capacity)
            for i, capacity in enumerate(capacities)
        ]
        completions = {}

        def proc(index, start, nbytes, cap, usage):
            if start > 0:
                yield engine.timeout(start)
            yield net.transfer(
                {resources[r]: w for r, w in usage.items()},
                nbytes,
                cap=cap,
                name=f"f{index}",
            )
            completions[index] = engine.now

        for index, (start, nbytes, cap, usage) in enumerate(flows):
            engine.spawn(proc(index, start, nbytes, cap, usage))
        if change is not None:
            when, r_index, new_capacity = change

            def reconfigure():
                yield engine.timeout(float(when))
                resources[r_index].set_capacity(float(new_capacity))

            engine.spawn(reconfigure())
        engine.run()
        return completions


@settings(max_examples=50, deadline=None)
@given(flow_schedules())
def test_three_solvers_agree_on_random_graphs(schedule):
    capacities, flows, change = schedule
    results = {
        name: _simulate(capacities, flows, change, knobs)
        for name, knobs in SOLVERS.items()
    }
    # exact float equality, per-flow completion times
    assert results["slowpath"] == results["incremental"]
    assert results["slowpath"] == results["vectorized"]


# ---------------------------------------------------------------------------
# real collectives under mid-window capacity faults
# ---------------------------------------------------------------------------

CAPACITY_FAULTS = [
    LinkFlap(start=5.0, duration=60.0, node=1, factor=0.25),
    NodeSlowdown(start=10.0, duration=80.0, node=2, factor=0.5),
    TreePortFlap(start=0.0, duration=50.0, node=3, factor=0.5),
]


def _collective_run(family, algorithm, x, knobs, faults):
    with vector_kernel_forced():
        machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        machine.flownet.configure(debug=True, **knobs)
        if faults:
            FaultSchedule(list(faults)).install(machine)
        result = run_collective(
            machine, family, algorithm, x, iters=2, steady_state=False
        )
        return result.elapsed_us, tuple(result.iterations_us)


@pytest.mark.parametrize(
    "family,algorithm,x",
    [("bcast", "tree-shaddr", 32768), ("bcast", "torus-shaddr", 32768)],
)
def test_solvers_agree_under_capacity_faults(family, algorithm, x):
    """LinkFlap/NodeSlowdown/TreePortFlap flip resource capacities while
    flows are in flight — the re-solve path every solver must get right."""
    results = {
        name: _collective_run(family, algorithm, x, knobs, CAPACITY_FAULTS)
        for name, knobs in SOLVERS.items()
    }
    assert results["slowpath"] == results["incremental"]
    assert results["slowpath"] == results["vectorized"]
    # Guard against vacuity: the fault windows must actually perturb the
    # timing, or the equivalence above proved nothing.
    clean = _collective_run(family, algorithm, x, SOLVERS["slowpath"], None)
    assert results["slowpath"] != clean


# ---------------------------------------------------------------------------
# compare_bench refuses cross-solver diffs
# ---------------------------------------------------------------------------

def _bench(base_entry, new_entry):
    return {"entries": {"base": base_entry, "new": new_entry}}


def _entry(solver=None, elapsed=100.0, **extra):
    entry = {
        "smoke": False,
        "sweeps": {
            "tree_bcast": {"points": [{"x": 65536, "elapsed_us": elapsed}]}
        },
    }
    if solver is not None:
        entry["solver"] = solver
    entry.update(extra)
    return entry


def test_compare_bench_refuses_cross_solver_entries():
    bench = _bench(_entry(solver="incremental"), _entry(solver="vectorized"))
    drifts = compare_bench(bench, "base", "new")
    assert len(drifts) == 1
    assert "different solvers" in drifts[0]
    assert "--allow-cross-solver" in drifts[0]


def test_compare_bench_allow_cross_solver_compares_points():
    bench = _bench(
        _entry(solver="incremental", elapsed=100.0),
        _entry(solver="vectorized+analytic", elapsed=100.0),
    )
    assert compare_bench(bench, "base", "new", allow_cross_solver=True) == []
    bench = _bench(
        _entry(solver="incremental", elapsed=100.0),
        _entry(solver="vectorized", elapsed=200.0),
    )
    drifts = compare_bench(bench, "base", "new", allow_cross_solver=True)
    assert drifts and "elapsed_us" in drifts[0]


def test_compare_bench_same_solver_unaffected():
    bench = _bench(_entry(solver="vectorized"), _entry(solver="vectorized"))
    assert compare_bench(bench, "base", "new") == []


def test_bench_entry_solver_legacy_derivation():
    """Entries recorded before the solver tag derive it from the legacy
    slowpath boolean, so old BENCH files keep comparing."""
    assert bench_entry_solver({"solver": "vectorized"}) == "vectorized"
    assert bench_entry_solver({"slowpath": True}) == "slowpath"
    assert bench_entry_solver({"slowpath": False}) == "incremental"
    assert bench_entry_solver({}) == "incremental"
    legacy = _entry()
    legacy["slowpath"] = True
    bench = _bench(legacy, _entry(solver="vectorized"))
    drifts = compare_bench(bench, "base", "new")
    assert drifts and "slowpath vs vectorized" in drifts[0]
