"""Integration tests: every broadcast algorithm delivers correct payloads.

These run the full simulated stack — rectangle routes or tree operations,
DMA/core flows, FIFOs, counters, window mappings — and assert bit-exact
delivery at every rank.
"""

import numpy as np
import pytest

from repro.bench import run_bcast
from repro.collectives.registry import bcast_algorithm, select_bcast
from repro.hardware import Machine, Mode

QUAD_ALGOS = [
    "torus-direct-put",
    "torus-fifo",
    "torus-shaddr",
    "tree-dma-fifo",
    "tree-dma-direct-put",
    "tree-shmem",
    "tree-shaddr",
]
SMP_ALGOS = ["torus-direct-put-smp", "tree-smp"]


def machine_for(algorithm, dims=(2, 2, 1)):
    mode = Mode.SMP if algorithm in SMP_ALGOS else Mode.QUAD
    return Machine(torus_dims=dims, mode=mode)


class TestBcastCorrectness:
    @pytest.mark.parametrize("algorithm", QUAD_ALGOS + SMP_ALGOS)
    def test_payload_delivered_everywhere(self, algorithm):
        m = machine_for(algorithm)
        result = run_bcast(m, algorithm, nbytes=60_000, iters=1, verify=True)
        assert result.elapsed_us > 0

    @pytest.mark.parametrize("algorithm", QUAD_ALGOS + SMP_ALGOS)
    def test_odd_sizes(self, algorithm):
        # Not a multiple of chunk, slot, or color counts.
        m = machine_for(algorithm)
        run_bcast(m, algorithm, nbytes=70_001, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", QUAD_ALGOS + SMP_ALGOS)
    def test_tiny_message(self, algorithm):
        m = machine_for(algorithm)
        run_bcast(m, algorithm, nbytes=8, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", QUAD_ALGOS + SMP_ALGOS)
    def test_zero_bytes(self, algorithm):
        m = machine_for(algorithm)
        result = run_bcast(m, algorithm, nbytes=0, iters=1)
        assert result.elapsed_us >= 0

    @pytest.mark.parametrize("algorithm", ["torus-shaddr", "torus-fifo",
                                           "torus-direct-put"])
    def test_asymmetric_torus(self, algorithm):
        m = machine_for(algorithm, dims=(3, 2, 1))
        run_bcast(m, algorithm, nbytes=50_000, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ["torus-shaddr", "torus-fifo"])
    def test_single_node(self, algorithm):
        # Pure intra-node broadcast (all phases degenerate).
        m = machine_for(algorithm, dims=(1, 1, 1))
        run_bcast(m, algorithm, nbytes=30_000, iters=1, verify=True)

    @pytest.mark.parametrize(
        "algorithm", ["torus-direct-put", "torus-fifo", "torus-shaddr"]
    )
    def test_nonzero_root(self, algorithm):
        m = machine_for(algorithm, dims=(2, 2, 1))
        # Root on a different node; local rank 0 (the torus algorithms
        # designate the root process as that node's master).
        run_bcast(m, algorithm, nbytes=40_000, root=4, iters=1, verify=True)

    def test_multiple_iterations_all_verified(self):
        m = machine_for("torus-shaddr")
        result = run_bcast(
            m, "torus-shaddr", nbytes=30_000, iters=3, verify=True
        )
        assert len(result.iterations_us) == 3
        # Later iterations benefit from cached window mappings.
        assert result.iterations_us[1] <= result.iterations_us[0]

    def test_dual_mode_supported_where_applicable(self):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.DUAL)
        for algorithm in ["torus-direct-put", "torus-fifo", "torus-shaddr",
                          "tree-dma-fifo", "tree-shmem"]:
            run_bcast(m := Machine(torus_dims=(2, 2, 1), mode=Mode.DUAL),
                      algorithm, nbytes=20_000, iters=1, verify=True)


class TestBcastModeGuards:
    def test_smp_algorithms_reject_quad_machine(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        for algorithm in SMP_ALGOS:
            with pytest.raises(ValueError):
                run_bcast(m, algorithm, nbytes=1024, iters=1)

    def test_tree_shaddr_requires_quad(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.DUAL)
        with pytest.raises(ValueError):
            run_bcast(m, "tree-shaddr", nbytes=1024, iters=1)

    def test_tree_shaddr_requires_root_local_zero(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        with pytest.raises(ValueError):
            run_bcast(m, "tree-shaddr", nbytes=1024, root=1, iters=1)

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            bcast_algorithm("nope")


class TestBcastPerformanceShape:
    """Coarse ordering invariants the model must always satisfy."""

    def test_quad_direct_put_slower_than_smp(self):
        smp = run_bcast(
            Machine(torus_dims=(2, 2, 2), mode=Mode.SMP),
            "torus-direct-put-smp", nbytes=512 * 1024,
        )
        quad = run_bcast(
            Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD),
            "torus-direct-put", nbytes=512 * 1024,
        )
        assert quad.bandwidth_mbs < smp.bandwidth_mbs

    def test_shaddr_beats_fifo_beats_direct_put(self):
        results = {}
        for algorithm in ["torus-direct-put", "torus-fifo", "torus-shaddr"]:
            m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            results[algorithm] = run_bcast(
                m, algorithm, nbytes=1024 * 1024
            ).bandwidth_mbs
        assert (
            results["torus-shaddr"]
            > results["torus-fifo"]
            > results["torus-direct-put"]
        )

    def test_tree_shaddr_beats_dma_variants_medium(self):
        results = {}
        for algorithm in ["tree-shaddr", "tree-dma-fifo",
                          "tree-dma-direct-put"]:
            m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            results[algorithm] = run_bcast(
                m, algorithm, nbytes=128 * 1024
            ).bandwidth_mbs
        assert results["tree-shaddr"] > results["tree-dma-fifo"]
        assert results["tree-shaddr"] > results["tree-dma-direct-put"]

    def test_shmem_latency_close_to_smp(self):
        smp = run_bcast(
            Machine(torus_dims=(2, 2, 2), mode=Mode.SMP), "tree-smp",
            nbytes=16,
        )
        shmem = run_bcast(
            Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD), "tree-shmem",
            nbytes=16,
        )
        fifo = run_bcast(
            Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD), "tree-dma-fifo",
            nbytes=16,
        )
        overhead = shmem.elapsed_us - smp.elapsed_us
        assert 0 < overhead < 1.0  # sub-microsecond (paper: 0.42 us)
        assert fifo.elapsed_us > shmem.elapsed_us

    def test_window_caching_helps_shaddr(self):
        cached = run_bcast(
            Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD), "torus-shaddr",
            nbytes=128 * 1024, iters=4, window_caching=True,
        )
        uncached = run_bcast(
            Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD), "torus-shaddr",
            nbytes=128 * 1024, iters=4, window_caching=False,
        )
        assert uncached.elapsed_us > cached.elapsed_us


class TestSelection:
    def test_short_messages_use_shmem_tree(self):
        assert select_bcast(256, ppn=4) == "tree-shmem"

    def test_medium_messages_use_shaddr_tree(self):
        assert select_bcast(128 * 1024, ppn=4) == "tree-shaddr"

    def test_large_messages_use_torus(self):
        assert select_bcast(2 * 1024 * 1024, ppn=4) == "torus-shaddr"

    def test_smp_mode_uses_hardware_protocols(self):
        assert select_bcast(1024, ppn=1) == "tree-smp"
        assert select_bcast(4 * 1024 * 1024, ppn=1) == "torus-direct-put-smp"
