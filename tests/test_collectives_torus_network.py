"""Unit tests for the shared torus rectangle-schedule network engine."""

import pytest

from repro.collectives.base import BcastInvocation
from repro.collectives.bcast.torus_common import TorusBcastNetwork
from repro.hardware import Machine, Mode


class _NullBcast(BcastInvocation):
    """Minimal invocation: network only, no intra-node stage."""

    name = "null-bcast"
    network = "torus"

    def setup(self) -> None:
        pass

    def proc(self, rank: int):  # pragma: no cover - not used here
        yield self.machine.engine.timeout(0)


def build(dims=(2, 2, 1), nbytes=100_000, ncolors=6, mode=Mode.SMP,
          external=False):
    machine = Machine(torus_dims=dims, mode=mode)
    machine.set_working_set(nbytes)
    inv = _NullBcast(machine, 0, nbytes)
    net = TorusBcastNetwork(
        inv, ncolors, machine.params.pipeline_width,
        external_root_feed=external,
    )
    return machine, net


class TestTorusBcastNetwork:
    def test_all_nodes_receive_everything(self):
        machine, net = build()
        done = {}

        def watcher(node):
            yield net.node_received[node].wait_for(net.inv.nbytes)
            done[node] = machine.engine.now

        procs = [
            machine.spawn(watcher(n)) for n in range(machine.nnodes)
        ]
        net.open()
        machine.engine.run_until_processes_finish(procs)
        assert set(done) == set(range(machine.nnodes))
        # Root's data is announced at the start gate.
        assert done[0] == 0.0
        assert all(t > 0 for n, t in done.items() if n != 0)

    def test_hooks_fire_once_per_chunk_per_node(self):
        machine, net = build(nbytes=200_000)
        counts = {}

        def hook(node, color, goff, size):
            counts[node] = counts.get(node, 0) + 1

        net.on_chunk(hook)
        net.open()
        machine.engine.run()
        for node in range(machine.nnodes):
            assert counts[node] == net.total_chunks_per_node

    def test_chunk_offsets_cover_message_exactly(self):
        machine, net = build(nbytes=123_457, ncolors=3)
        seen = {}

        def hook(node, color, goff, size):
            seen.setdefault(node, []).append((goff, size))

        net.on_chunk(hook)
        net.open()
        machine.engine.run()
        for node, chunks in seen.items():
            covered = sorted(chunks)
            total = sum(size for _o, size in covered)
            assert total == 123_457
            # Non-overlapping coverage of [0, nbytes).
            position = 0
            for off, size in covered:
                assert off == position
                position += size

    def test_nothing_moves_before_open(self):
        machine, net = build()
        machine.engine.run(until=10_000.0)
        for node in range(1, machine.nnodes):
            assert net.node_received[node].value == 0

    def test_external_root_feed_paces_broadcast(self):
        machine, net = build(nbytes=120_000, ncolors=3, external=True)
        done = {}

        def feeder():
            # Feed each color's partition in two halves, the second late.
            for color_id, (off, plan) in enumerate(net.plans):
                net.feed_root(color_id, plan.total // 2)
            yield machine.engine.timeout(5000.0)
            for color_id, (off, plan) in enumerate(net.plans):
                net.feed_root(color_id, plan.total - plan.total // 2)

        def watcher(node):
            yield net.node_received[node].wait_for(net.inv.nbytes)
            done[node] = machine.engine.now

        procs = [machine.spawn(feeder())] + [
            machine.spawn(watcher(n)) for n in range(machine.nnodes)
        ]
        net.open()
        machine.engine.run_until_processes_finish(procs)
        # Completion must wait for the late second half (the root node's
        # completes exactly at the feed; others after propagation).
        assert all(t >= 5000.0 for t in done.values())
        assert all(t > 5000.0 for n, t in done.items() if n != 0)

    def test_feed_root_requires_external_mode(self):
        _machine, net = build()
        with pytest.raises(RuntimeError):
            net.feed_root(0, 100)

    def test_single_color_schedule(self):
        machine, net = build(ncolors=1, nbytes=50_000)
        net.open()
        machine.engine.run()
        for node in range(machine.nnodes):
            assert net.node_received[node].value == 50_000

    def test_quad_mode_masters_receive(self):
        machine, net = build(mode=Mode.QUAD, nbytes=60_000)
        net.open()
        machine.engine.run()
        assert net.node_received[1].value == 60_000
