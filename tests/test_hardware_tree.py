"""Unit tests for the collective (tree) network model."""

import pytest

from repro.hardware import Machine, Mode
from repro.hardware.tree import TreeOperation, split_chunks


def make(dims=(2, 2, 1), mode=Mode.SMP):
    m = Machine(torus_dims=dims, mode=mode)
    m.set_working_set(1024)
    return m


class TestSplitChunks:
    def test_exact(self):
        assert split_chunks(100, 50) == [50, 50]

    def test_remainder(self):
        assert split_chunks(110, 50) == [50, 50, 10]

    def test_zero(self):
        assert split_chunks(0, 50) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_chunks(-1, 50)
        with pytest.raises(ValueError):
            split_chunks(10, 0)


class TestTreeOperation:
    def _run_full_op(self, m, nbytes, chunk):
        """Every node injects and receives every chunk; returns finish time."""
        op = m.tree.operation(nbytes, chunk)
        finished = {}

        def node_proc(n):
            for k in range(op.nchunks):
                yield from op.inject(n, k)
                yield from op.receive(n, k)
            finished[n] = m.engine.now

        procs = [
            m.spawn(node_proc(n), name=f"n{n}") for n in range(m.nnodes)
        ]
        m.engine.run_until_processes_finish(procs)
        return max(finished.values())

    def test_completes_and_takes_time(self):
        m = make()
        t = self._run_full_op(m, 64 * 1024, 16 * 1024)
        assert t > 0

    def test_availability_needs_all_injections(self):
        m = make()
        op = m.tree.operation(1024, 1024)
        log = {}

        def fast_node():
            yield from op.inject(0, 0)
            yield from op.receive(0, 0)
            log["fast_done"] = m.engine.now

        def slow_node(n):
            yield m.engine.timeout(500.0)
            yield from op.inject(n, 0)
            yield from op.receive(n, 0)

        procs = [m.spawn(fast_node())] + [
            m.spawn(slow_node(n)) for n in range(1, m.nnodes)
        ]
        m.engine.run_until_processes_finish(procs)
        # The combined result cannot leave before the last injection.
        assert log["fast_done"] > 500.0

    def test_throughput_bounded_by_link_rate(self):
        m = make(dims=(2, 1, 1))
        nbytes = 850 * 100  # 100 µs of payload at full tree rate
        t = self._run_full_op(m, nbytes, 8 * 1024)
        assert t >= 100.0  # cannot beat the 850 MB/s wire

    def test_single_core_halves_throughput(self):
        """Injecting and receiving from the same coroutine serializes —
        the reason two cores are needed to saturate the network."""
        m1 = make(dims=(2, 1, 1))
        nbytes = 850 * 200
        serial_time = self._run_full_op(m1, nbytes, 64 * 1024)

        # Overlapped: a helper coroutine injects while the main receives.
        m2 = make(dims=(2, 1, 1))
        op = m2.tree.operation(nbytes, 64 * 1024)
        finished = {}

        def injector(n):
            for k in range(op.nchunks):
                yield from op.inject(n, k)

        def receiver(n):
            for k in range(op.nchunks):
                yield from op.receive(n, k)
            finished[n] = m2.engine.now

        procs = []
        for n in range(m2.nnodes):
            procs.append(m2.spawn(injector(n)))
            procs.append(m2.spawn(receiver(n)))
        m2.engine.run_until_processes_finish(procs)
        overlapped_time = max(finished.values())
        assert overlapped_time < 0.75 * serial_time

    def test_window_backpressure(self):
        """A slow drainer throttles injection beyond the window."""
        m = make(dims=(2, 1, 1))
        window = m.params.tree_window_chunks
        op = m.tree.operation(16 * 1024 * (window + 3), 16 * 1024)
        inject_times = []

        def injector(n):
            for k in range(op.nchunks):
                yield from op.inject(n, k)
                if n == 0:
                    inject_times.append(m.engine.now)

        def slow_receiver(n):
            for k in range(op.nchunks):
                yield m.engine.timeout(300.0)
                yield from op.receive(n, k)

        procs = []
        for n in range(m.nnodes):
            procs.append(m.spawn(injector(n)))
            procs.append(m.spawn(slow_receiver(n)))
        m.engine.run_until_processes_finish(procs)
        # Injection of chunk `window` had to wait for drain of chunk 0.
        assert inject_times[window] > 300.0
