"""Unit and property tests for colors, partitions, rectangle routes, rings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Machine, Mode
from repro.msg import (
    ChunkPlan,
    Color,
    RectangleSchedule,
    partition_bytes,
    ring_order,
    split_chunks,
    torus_colors,
)

dims_strategy = st.tuples(
    st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)
).filter(lambda d: d[0] * d[1] * d[2] > 1)


class TestColors:
    def test_six_colors_unique_routes(self):
        colors = torus_colors(6)
        assert len(colors) == 6
        assert len({(c.dim_order, c.sign) for c in colors}) == 6
        assert {c.id for c in colors} == set(range(6))

    def test_three_colors_positive(self):
        colors = torus_colors(3)
        assert all(c.sign == 1 for c in colors)
        assert len({c.dim_order for c in colors}) == 3

    def test_one_color(self):
        assert len(torus_colors(1)) == 1

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            torus_colors(4)

    def test_bad_dim_order_rejected(self):
        with pytest.raises(ValueError):
            Color(0, (0, 0, 2), 1)

    def test_bad_sign_rejected(self):
        with pytest.raises(ValueError):
            Color(0, (0, 1, 2), 0)


class TestPartitionBytes:
    def test_sums_to_total(self):
        assert sum(partition_bytes(100, 6)) == 100

    def test_alignment(self):
        parts = partition_bytes(8 * 13, 3, align=8)
        assert sum(parts) == 8 * 13
        assert all(p % 8 == 0 for p in parts)

    def test_unaligned_total_rejected(self):
        with pytest.raises(ValueError):
            partition_bytes(12, 3, align=8)

    @given(
        nbytes=st.integers(0, 10**6),
        ncolors=st.sampled_from([1, 3, 6]),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_properties(self, nbytes, ncolors):
        parts = partition_bytes(nbytes, ncolors)
        assert sum(parts) == nbytes
        assert len(parts) == ncolors
        assert max(parts) - min(parts) <= 1
        assert all(p >= 0 for p in parts)


class TestChunkPlan:
    def test_exact_division(self):
        plan = ChunkPlan.build(100, 25)
        assert plan.sizes == (25, 25, 25, 25)
        assert plan.offset(2) == 50

    def test_remainder(self):
        plan = ChunkPlan.build(90, 25)
        assert plan.sizes == (25, 25, 25, 15)

    def test_empty(self):
        assert ChunkPlan.build(0, 10).nchunks == 0

    def test_slices(self):
        plan = ChunkPlan.build(50, 20)
        assert list(plan.slices()) == [(0, 0, 20), (1, 20, 20), (2, 40, 10)]

    def test_offset_out_of_range(self):
        with pytest.raises(IndexError):
            ChunkPlan.build(10, 5).offset(2)

    @given(nbytes=st.integers(0, 10**6), chunk=st.integers(1, 10**5))
    @settings(max_examples=50, deadline=None)
    def test_split_reassembles(self, nbytes, chunk):
        sizes = split_chunks(nbytes, chunk)
        assert sum(sizes) == nbytes
        assert all(0 < s <= chunk for s in sizes)
        if sizes:
            assert all(s == chunk for s in sizes[:-1])


class TestRectangleSchedule:
    @given(dims=dims_strategy, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_node_reached_exactly_once(self, dims, data):
        m = Machine(torus_dims=dims, mode=Mode.SMP)
        root = data.draw(st.integers(0, m.nnodes - 1))
        for color in torus_colors(6):
            sched = RectangleSchedule(m.torus, root, color)
            roles = sched.all_roles()
            assert roles[root].receive_phase == -1
            for node, role in enumerate(roles):
                if node != root:
                    assert 0 <= role.receive_phase < sched.nphases

    @given(dims=dims_strategy, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_relays_cover_later_phases_only(self, dims, data):
        m = Machine(torus_dims=dims, mode=Mode.SMP)
        root = data.draw(st.integers(0, m.nnodes - 1))
        color = data.draw(st.sampled_from(torus_colors(6)))
        sched = RectangleSchedule(m.torus, root, color)
        for node in range(m.nnodes):
            role = sched.role(node)
            for phase, dim in role.relays:
                assert phase > role.receive_phase
                assert dim == sched.phase_dims[phase]

    def test_line_broadcast_coverage_simulates_reachability(self):
        """Executing the schedule's line broadcasts reaches every node."""
        m = Machine(torus_dims=(3, 4, 2), mode=Mode.SMP)
        root = 7
        for color in torus_colors(6):
            sched = RectangleSchedule(m.torus, root, color)
            have = {root}
            for phase, dim in enumerate(sched.phase_dims):
                sources = [
                    n for n in range(m.nnodes)
                    if (n == root and (phase, dim) in sched.role(n).relays)
                    or (n != root and (phase, dim) in sched.role(n).relays)
                    or (n == root and phase == 0)
                ]
                # Everyone relaying in this phase must already hold the data.
                new = set()
                for src in sources:
                    assert src in have, (color.id, phase, src)
                    new.update(m.torus.line_nodes(src, dim, color.sign))
                have |= new
            assert have == set(range(m.nnodes)), color.id

    def test_degenerate_dimension_skipped(self):
        m = Machine(torus_dims=(4, 1, 2), mode=Mode.SMP)
        sched = RectangleSchedule(m.torus, 0, torus_colors(6)[0])
        assert sched.nphases == 2
        assert 1 not in sched.phase_dims

    def test_single_node_machine(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.SMP)
        sched = RectangleSchedule(m.torus, 0, torus_colors(1)[0])
        assert sched.nphases == 0
        assert sched.role(0).receive_phase == -1
        assert sched.role(0).relays == ()


class TestRingOrder:
    @given(dims=dims_strategy, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_ring_is_a_permutation_starting_at_root(self, dims, data):
        m = Machine(torus_dims=dims, mode=Mode.SMP)
        root = data.draw(st.integers(0, m.nnodes - 1))
        color = data.draw(st.sampled_from(torus_colors(3)))
        ring = ring_order(m.torus, color, root)
        assert sorted(ring) == list(range(m.nnodes))
        assert ring[0] == root

    @given(dims=dims_strategy)
    @settings(max_examples=30, deadline=None)
    def test_snake_neighbours_are_close(self, dims):
        m = Machine(torus_dims=dims, mode=Mode.SMP)
        color = torus_colors(3)[0]
        ring = ring_order(m.torus, color, 0)
        hops = [
            m.torus.hop_distance(ring[i], ring[i + 1])
            for i in range(len(ring) - 1)
        ]
        # The snake keeps consecutive positions within a couple of hops.
        assert max(hops) <= 2

    def test_three_color_rings_differ(self):
        m = Machine(torus_dims=(3, 3, 3), mode=Mode.SMP)
        rings = [ring_order(m.torus, c, 0) for c in torus_colors(3)]
        assert rings[0] != rings[1] != rings[2]
