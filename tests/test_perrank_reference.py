"""Bit-exact regression gate for the simulator's timing arithmetic.

Replays the recorded scenario battery (``benchmarks/record_perrank.py``)
and asserts the per-rank, per-iteration elapsed-time matrices reproduce
the committed reference floats exactly — on the default incremental
solver *and* on the from-scratch reference solver — so the two paths are
pinned to each other and to history at the last-bit level.
"""

import json
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
REFERENCE_PATH = BENCH_DIR / "results" / "perrank_reference.json"


def _replay():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        from record_perrank import simulate_battery
    finally:
        sys.path.pop(0)
    return simulate_battery()


def _assert_matches_reference(records):
    with open(REFERENCE_PATH) as handle:
        reference = json.load(handle)["scenarios"]
    assert set(records) == set(reference)
    for scenario_id, record in records.items():
        expected = reference[scenario_id]
        assert record["times"] == expected["times"], (
            f"{scenario_id}: per-rank time matrix diverged from reference"
        )
        assert record["elapsed_us"] == expected["elapsed_us"], scenario_id
        assert record["iterations_us"] == expected["iterations_us"], (
            scenario_id
        )


def test_incremental_solver_reproduces_reference():
    _assert_matches_reference(_replay())


def test_reference_solver_reproduces_reference(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    _assert_matches_reference(_replay())


def test_debug_mode_reproduces_reference(monkeypatch):
    """The accumulator cross-checks must be pure observers."""
    monkeypatch.setenv("REPRO_SIM_DEBUG", "1")
    _assert_matches_reference(_replay())


def _measure_matrix(kind, algorithm, x, iters, steady_state):
    import repro.bench.harness as harness
    from repro.hardware.machine import Machine, Mode

    captured = []
    original = harness._measure

    def capture(*args, **kwargs):
        times = original(*args, **kwargs)
        captured.append(times)
        return times

    harness._measure = capture
    try:
        machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        runner = getattr(harness, f"run_{kind}")
        result = runner(
            machine, algorithm, x, iters=iters, steady_state=steady_state
        )
    finally:
        harness._measure = original
    return captured[0], result.iterations_us, result.elapsed_us


@pytest.mark.parametrize(
    "kind, algorithm, x",
    [
        ("bcast", "torus-shaddr", 65536),
        ("bcast", "tree-dma-fifo", 16384),
        ("allreduce", "allreduce-torus-shaddr", 2048),
    ],
)
def test_steady_state_short_circuit_is_exact(kind, algorithm, x):
    """Full loop and short-circuited loop give bit-identical matrices."""
    full = _measure_matrix(kind, algorithm, x, 6, steady_state=False)
    short = _measure_matrix(kind, algorithm, x, 6, steady_state=True)
    assert short == full
