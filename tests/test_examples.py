"""Smoke tests for the example scripts (the fast ones run end-to-end)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_color_routes(self):
        out = run_example("color_routes.py", "2", "2", "2")
        assert "color 0" in out
        assert "color 5" in out
        assert "R" in out

    def test_fifo_threads(self):
        out = run_example("fifo_threads.py")
        assert "bit-exactly" in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "torus-shaddr" in out
        assert "allreduce-torus-current" in out
        assert "tree-shmem" in out

    def test_bottleneck_profile(self):
        out = run_example("bottleneck_profile.py")
        assert "bottleneck" in out
        assert "measured" in out
        assert "utilization" in out

    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            text = script.read_text()
            assert text.startswith("#!/usr/bin/env python3"), script.name
            assert '"""' in text, script.name
