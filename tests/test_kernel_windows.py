"""Unit tests for the CNK process-window model."""

import pytest

from repro.hardware import BGPParams, Machine, Mode
from repro.kernel.windows import ProcessWindows
from repro.util.units import MIB


def run_map(windows, peer, key, nbytes, machine):
    """Drive a map_buffer call to completion; return elapsed sim time."""
    start = machine.engine.now
    result = {}

    def p():
        mapping = yield from windows.map_buffer(peer, key, nbytes)
        result["mapping"] = mapping
        result["elapsed"] = machine.engine.now - start

    proc = machine.spawn(p())
    machine.engine.run_until_processes_finish([proc])
    return result


class TestSlotsNeeded:
    def test_small_buffer_one_slot(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m)
        assert w.slots_needed(1) == 1
        assert w.slots_needed(256 * MIB) == 1

    def test_spanning_buffer_two_slots(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m)
        assert w.slots_needed(256 * MIB + 1) == 2

    def test_small_tlb_slot_size(self):
        params = BGPParams(tlb_slot_bytes=1 * MIB)
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD, params=params)
        w = ProcessWindows(m)
        assert w.slots_needed(4 * MIB) == 4

    def test_zero_rejected(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        with pytest.raises(ValueError):
            ProcessWindows(m).slots_needed(0)


class TestMappingCosts:
    def test_first_map_pays_two_syscalls(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m)
        r = run_map(w, 1, "buf", 4096, m)
        assert r["elapsed"] == pytest.approx(2 * m.params.syscall_cost)
        assert w.syscalls == 2
        assert w.mappings_installed == 1

    def test_cached_repeat_is_free(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m, caching=True)
        run_map(w, 1, "buf", 4096, m)
        r = run_map(w, 1, "buf", 4096, m)
        assert r["elapsed"] == 0.0
        assert w.cache_hits == 1
        assert w.syscalls == 2

    def test_nocaching_pays_every_time(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m, caching=False)
        run_map(w, 1, "buf", 4096, m)
        run_map(w, 1, "buf", 4096, m)
        assert w.syscalls == 4
        assert w.cache_hits == 0

    def test_spanning_buffer_costs_per_slot(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m)
        r = run_map(w, 1, "big", 256 * MIB + 1, m)
        assert r["elapsed"] == pytest.approx(4 * m.params.syscall_cost)

    def test_smaller_cached_buffer_does_not_serve_larger(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m)
        run_map(w, 1, "buf", 1024, m)
        run_map(w, 1, "buf", 2048, m)
        assert w.mappings_installed == 2

    def test_cached_larger_serves_smaller(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m)
        run_map(w, 1, "buf", 2048, m)
        r = run_map(w, 1, "buf", 1024, m)
        assert r["elapsed"] == 0.0

    def test_invalidate_drops_cache(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m)
        run_map(w, 1, "buf", 4096, m)
        w.invalidate(1, "buf")
        run_map(w, 1, "buf", 4096, m)
        assert w.syscalls == 4

    def test_distinct_buffers_of_same_peer_thrash_slot(self):
        # One slot per peer in quad mode: alternating two different large
        # buffers of the same peer evicts each time.
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m)
        run_map(w, 1, "a", 4096, m)
        run_map(w, 1, "b", 4096, m)
        r = run_map(w, 1, "a", 4096, m)
        assert r["elapsed"] > 0.0  # was evicted by "b"

    def test_mapping_fields(self):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        w = ProcessWindows(m)
        r = run_map(w, 2, "k", 4096, m)
        mapping = r["mapping"]
        assert mapping.peer == 2
        assert mapping.buffer_key == "k"
        assert mapping.nbytes == 4096
        assert mapping.slots == 1
