"""Unit tests for Server, FairSharePipe, Store, SimBarrier, SimCounter."""

import pytest

from repro.sim import (
    Engine,
    FairSharePipe,
    Server,
    SimBarrier,
    SimCounter,
    SimulationError,
    Store,
)


class TestServer:
    def test_fcfs_ordering(self):
        eng = Engine()
        srv = Server(eng, capacity=1)
        log = []

        def user(i):
            yield from srv.use(5.0)
            log.append((i, eng.now))

        for i in range(3):
            eng.spawn(user(i))
        eng.run()
        assert log == [(0, 5.0), (1, 10.0), (2, 15.0)]

    def test_capacity_two_overlaps(self):
        eng = Engine()
        srv = Server(eng, capacity=2)
        log = []

        def user(i):
            yield from srv.use(5.0)
            log.append((i, eng.now))

        for i in range(4):
            eng.spawn(user(i))
        eng.run()
        assert log == [(0, 5.0), (1, 5.0), (2, 10.0), (3, 10.0)]

    def test_double_release_raises(self):
        eng = Engine()
        srv = Server(eng)

        def p():
            grant = yield srv.acquire()
            srv.release(grant)
            srv.release(grant)

        eng.spawn(p())
        with pytest.raises(SimulationError):
            eng.run()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Server(Engine(), capacity=0)

    def test_queue_length_visible(self):
        eng = Engine()
        srv = Server(eng, capacity=1)

        def holder():
            yield from srv.use(10.0)

        def waiter():
            yield from srv.use(1.0)

        eng.spawn(holder())
        eng.spawn(waiter())
        eng.run(until=5.0)
        assert srv.in_use == 1
        assert srv.queue_length == 1


class TestFairSharePipe:
    def test_single_flow_respects_cap(self):
        eng = Engine()
        pipe = FairSharePipe(eng, total_rate=100.0, per_flow_cap=40.0)
        done = []

        def p():
            yield pipe.transfer(400.0)
            done.append(eng.now)

        eng.spawn(p())
        eng.run()
        assert done == [pytest.approx(10.0)]

    def test_two_flows_share_equally(self):
        eng = Engine()
        pipe = FairSharePipe(eng, total_rate=100.0)
        done = {}

        def p(name, nbytes):
            yield pipe.transfer(nbytes)
            done[name] = eng.now

        eng.spawn(p("a", 5000.0))
        eng.spawn(p("b", 5000.0))
        eng.run()
        # 50 each -> both done at 100
        assert done["a"] == pytest.approx(100.0)
        assert done["b"] == pytest.approx(100.0)

    def test_departure_speeds_up_remaining(self):
        eng = Engine()
        pipe = FairSharePipe(eng, total_rate=100.0, per_flow_cap=80.0)
        done = {}

        def p(name, nbytes):
            yield pipe.transfer(nbytes)
            done[name] = eng.now

        eng.spawn(p("short", 5000.0))
        eng.spawn(p("long", 8000.0))
        eng.run()
        # Shared at 50/50 until t=100; long has 3000 left at cap 80.
        assert done["short"] == pytest.approx(100.0)
        assert done["long"] == pytest.approx(100.0 + 3000.0 / 80.0)

    def test_zero_bytes_completes_now(self):
        eng = Engine()
        pipe = FairSharePipe(eng, total_rate=10.0)
        done = []

        def p():
            yield pipe.transfer(0)
            done.append(eng.now)

        eng.spawn(p())
        eng.run()
        assert done == [0.0]

    def test_bytes_transferred_accounting(self):
        eng = Engine()
        pipe = FairSharePipe(eng, total_rate=10.0)

        def p():
            yield pipe.transfer(30.0)
            yield pipe.transfer(20.0)

        eng.spawn(p())
        eng.run()
        assert pipe.bytes_transferred == pytest.approx(50.0)


class TestStore:
    def test_fifo_order(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def producer():
            for i in range(3):
                yield eng.timeout(1.0)
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append((item, eng.now))

        eng.spawn(consumer())
        eng.spawn(producer())
        eng.run()
        assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_bounded_put_blocks(self):
        eng = Engine()
        store = Store(eng, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put-a", eng.now))
            yield store.put("b")
            log.append(("put-b", eng.now))

        def consumer():
            yield eng.timeout(5.0)
            item = yield store.get()
            log.append((item, eng.now))

        eng.spawn(producer())
        eng.spawn(consumer())
        eng.run()
        assert ("put-a", 0.0) in log
        assert ("put-b", 5.0) in log

    def test_get_before_put_hands_off_directly(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, eng.now))

        def producer():
            yield eng.timeout(2.0)
            yield store.put("x")

        eng.spawn(consumer())
        eng.spawn(producer())
        eng.run()
        assert got == [("x", 2.0)]


class TestSimBarrier:
    def test_releases_all_at_last_arrival(self):
        eng = Engine()
        barrier = SimBarrier(eng, 3)
        log = []

        def p(i):
            yield eng.timeout(float(i))
            yield barrier.wait()
            log.append((i, eng.now))

        for i in range(3):
            eng.spawn(p(i))
        eng.run()
        assert log == [(0, 2.0), (1, 2.0), (2, 2.0)]

    def test_latency_applied(self):
        eng = Engine()
        barrier = SimBarrier(eng, 2, latency=1.3)
        log = []

        def p():
            yield barrier.wait()
            log.append(eng.now)

        eng.spawn(p())
        eng.spawn(p())
        eng.run()
        assert log == [1.3, 1.3]

    def test_cyclic_reuse(self):
        eng = Engine()
        barrier = SimBarrier(eng, 2)
        log = []

        def p(i):
            for _round in range(3):
                yield eng.timeout(1.0 * (i + 1))
                yield barrier.wait()
            log.append((i, eng.now))

        eng.spawn(p(0))
        eng.spawn(p(1))
        eng.run()
        assert barrier.generation == 3
        assert log == [(0, 6.0), (1, 6.0)]


class TestSimCounter:
    def test_wait_threshold(self):
        eng = Engine()
        counter = SimCounter(eng)
        log = []

        def waiter():
            value = yield counter.wait_for(10)
            log.append((value, eng.now))

        def adder():
            for _ in range(4):
                yield eng.timeout(1.0)
                counter.add(3)

        eng.spawn(waiter())
        eng.spawn(adder())
        eng.run()
        assert log == [(12, 4.0)]

    def test_immediate_when_already_met(self):
        eng = Engine()
        counter = SimCounter(eng, value=5)
        log = []

        def p():
            value = yield counter.wait_for(5)
            log.append(value)

        eng.spawn(p())
        eng.run()
        assert log == [5]

    def test_decrease_rejected(self):
        eng = Engine()
        counter = SimCounter(eng)
        with pytest.raises(ValueError):
            counter.add(-1)

    def test_set_at_least(self):
        eng = Engine()
        counter = SimCounter(eng, value=5)
        counter.set_at_least(3)
        assert counter.value == 5
        counter.set_at_least(9)
        assert counter.value == 9

    def test_reset_guard(self):
        eng = Engine()
        counter = SimCounter(eng)
        counter.wait_for(10)
        with pytest.raises(RuntimeError):
            counter.reset()
