"""Integration tests for the future-work gather extension."""

import pytest

from repro.bench.harness import run_gather
from repro.collectives.registry import (
    gather_algorithm,
    list_gather_algorithms,
)
from repro.hardware import Machine, Mode

ALGOS = ["gather-ring-current", "gather-ring-shaddr"]


class TestGatherCorrectness:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_root_assembles_all_blocks(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        result = run_gather(
            m, algorithm, block_bytes=4096, iters=1, verify=True
        )
        assert result.nbytes == 4096 * m.nprocs

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_odd_block(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD)
        run_gather(m, algorithm, block_bytes=2049, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_single_node(self, algorithm):
        m = Machine(torus_dims=(1, 1, 1), mode=Mode.QUAD)
        run_gather(m, algorithm, block_bytes=1024, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_smp_mode(self, algorithm):
        m = Machine(torus_dims=(2, 2, 1), mode=Mode.SMP)
        run_gather(m, algorithm, block_bytes=4096, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_asymmetric_torus(self, algorithm):
        m = Machine(torus_dims=(3, 2, 1), mode=Mode.QUAD)
        run_gather(m, algorithm, block_bytes=1000, iters=1, verify=True)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_zero_block(self, algorithm):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        result = run_gather(m, algorithm, block_bytes=0, iters=1)
        assert result.elapsed_us >= 0

    def test_iterations(self):
        m = Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD)
        result = run_gather(
            m, "gather-ring-shaddr", block_bytes=1024, iters=3, verify=True
        )
        assert len(result.iterations_us) == 3

    def test_registry(self):
        assert list_gather_algorithms() == sorted(ALGOS)
        with pytest.raises(KeyError):
            gather_algorithm("nope")


class TestGatherShape:
    def test_shaddr_at_least_as_fast(self):
        results = {}
        for algorithm in ALGOS:
            m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            results[algorithm] = run_gather(
                m, algorithm, block_bytes=64 * 1024
            ).elapsed_us
        assert (
            results["gather-ring-shaddr"]
            <= results["gather-ring-current"]
        )

    def test_non_root_ranks_return_early(self):
        """MPI_Gather local-completion: non-roots don't wait for the root."""
        m = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        from repro.bench.harness import _measure
        from repro.collectives.gather import RingShaddrGather

        def make(_i):
            return RingShaddrGather(m, 32 * 1024)

        times = _measure(m, make, iters=1, verify=False)
        root_time = times[0][0]
        non_root = [t for r, t in enumerate(times[0]) if r != 0]
        assert max(non_root) < root_time
