"""Tests for the MPI-facing layer: datatypes, ops, Communicator."""

import numpy as np
import pytest

from repro import (
    DOUBLE,
    FLOAT,
    INT32,
    MAX,
    MIN,
    PROD,
    SUM,
    Communicator,
    Machine,
    Mode,
)
from repro.mpi import datatypes, ops


class TestDatatypes:
    def test_extent(self):
        assert DOUBLE.extent(10) == 80
        assert INT32.extent(3) == 12

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            DOUBLE.extent(-1)

    def test_lookup(self):
        assert datatypes.lookup("MPI_DOUBLE") is DOUBLE
        with pytest.raises(KeyError):
            datatypes.lookup("MPI_NOPE")

    def test_str(self):
        assert str(FLOAT) == "MPI_FLOAT"


class TestOps:
    def test_sum_combine(self):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0])
        assert np.array_equal(SUM.combine(a, b), [4.0, 6.0])

    def test_max_min_prod(self):
        stacked = np.array([[1.0, 5.0], [3.0, 2.0]])
        assert np.array_equal(MAX.reduce_all(stacked), [3.0, 5.0])
        assert np.array_equal(MIN.reduce_all(stacked), [1.0, 2.0])
        assert np.array_equal(PROD.reduce_all(stacked), [3.0, 10.0])

    def test_combine_shape_mismatch(self):
        with pytest.raises(ValueError):
            SUM.combine(np.zeros(2), np.zeros(3))

    def test_reduce_all_requires_2d(self):
        with pytest.raises(ValueError):
            SUM.reduce_all(np.zeros(3))

    def test_lookup(self):
        assert ops.lookup("MPI_SUM") is SUM
        with pytest.raises(KeyError):
            ops.lookup("MPI_XOR")


class TestCommunicator:
    def test_size(self):
        comm = Communicator(Machine(torus_dims=(2, 2, 1), mode=Mode.QUAD))
        assert comm.size == 16

    def test_bcast_accepts_size_strings(self):
        comm = Communicator(Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD))
        result = comm.bcast(nbytes="16K", verify=True)
        assert result.nbytes == 16 * 1024

    def test_bcast_auto_selection_by_size(self):
        comm = Communicator(Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD))
        assert comm.bcast(nbytes=256).algorithm == "tree-shmem"
        assert comm.bcast(nbytes=64 * 1024).algorithm == "tree-shaddr"
        assert comm.bcast(nbytes=1024 * 1024).algorithm == "torus-shaddr"

    def test_bcast_explicit_algorithm(self):
        comm = Communicator(Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD))
        result = comm.bcast(nbytes=4096, algorithm="torus-fifo", verify=True)
        assert result.algorithm == "torus-fifo"

    def test_allreduce_auto(self):
        comm = Communicator(Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD))
        assert comm.allreduce(count=128).algorithm == "allreduce-tree"
        assert (
            comm.allreduce(count=64 * 1024).algorithm
            == "allreduce-torus-shaddr"
        )

    def test_allreduce_verify(self):
        comm = Communicator(Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD))
        comm.allreduce(count=2048, verify=True)

    def test_allreduce_other_dtype_times_by_volume(self):
        comm = Communicator(Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD))
        result = comm.allreduce(count=1000, dtype=FLOAT, op=MAX)
        assert result.elapsed_us > 0

    def test_allreduce_other_op_verify_unsupported(self):
        comm = Communicator(Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD))
        with pytest.raises(NotImplementedError):
            comm.allreduce(count=100, op=MAX, verify=True)

    def test_barrier_latency(self):
        comm = Communicator(Machine(torus_dims=(2, 1, 1), mode=Mode.QUAD))
        assert comm.barrier() == pytest.approx(
            comm.machine.params.barrier_latency
        )

    def test_available_algorithms_nonempty(self):
        assert "torus-shaddr" in Communicator.available_bcast_algorithms()
