#!/usr/bin/env python3
"""Visualize the multi-color rectangle broadcast (paper Fig 2).

Prints, for a 2D slice of the torus, the phase in which each node receives
a color's data and the dimensions along which it relays — the "multi-color
rectangle algorithm" whose phases the torus broadcast schedules execute.

Run:  python examples/color_routes.py [Lx Ly Lz [root]]
"""

import sys

from repro import Machine, Mode
from repro.msg import RectangleSchedule, torus_colors

PHASE_GLYPH = {-1: "R", 0: "1", 1: "2", 2: "3"}
DIM_NAME = "XYZ"


def show_color(machine, root, color) -> None:
    torus = machine.torus
    sched = RectangleSchedule(torus, root, color)
    order = "".join(DIM_NAME[d] for d in color.dim_order)
    sign = "+" if color.sign > 0 else "-"
    print(f"color {color.id}: dimension order {order}, direction {sign}")
    print(f"  phases: "
          + ", ".join(
              f"{i + 1}:{DIM_NAME[d]}{sign}"
              for i, d in enumerate(sched.phase_dims)
          ))
    lx, ly, lz = torus.dims
    for z in range(lz):
        print(f"  z={z}  (R=root, digit = phase of first reception)")
        for y in reversed(range(ly)):
            row = []
            for x in range(lx):
                node = torus.index((x, y, z))
                role = sched.role(node)
                glyph = PHASE_GLYPH[role.receive_phase]
                relays = "".join(DIM_NAME[d].lower() for _p, d in role.relays)
                row.append(f"{glyph}{relays:<2}")
            print("      " + " ".join(row))
    print()


def main() -> None:
    args = [int(a) for a in sys.argv[1:]] or []
    dims = tuple(args[:3]) if len(args) >= 3 else (4, 4, 2)
    root = args[3] if len(args) >= 4 else 0
    machine = Machine(torus_dims=dims, mode=Mode.SMP)
    print(f"torus {dims}, root node {root}; lowercase letters = dimensions "
          f"the node relays along\n")
    for color in torus_colors(6):
        show_color(machine, root, color)
    print("Each color carries 1/6 of the message over its own edge-disjoint")
    print("route; with six colors active the root streams on all six links.")


if __name__ == "__main__":
    main()
