#!/usr/bin/env python3
"""Where do the bytes go?  Profile + predict the broadcast bottlenecks.

For each torus broadcast algorithm this script:

1. prints the *analytic* steady-state bounds (which resource should bind,
   straight from the hardware constants and route accounting), then
2. runs the simulator and prints the *measured* bandwidth and per-resource
   utilization —

making the paper's core argument visible end to end: the current
direct-put baseline saturates the DMA while the wires idle; the
shared-address scheme drains the same wires three times harder with the
DMA relieved.

Run:  python examples/bottleneck_profile.py
"""

from repro import Machine, Mode
from repro.analysis import predict_torus_bcast
from repro.bench import format_report, run_bcast, utilization_report
from repro.hardware import BGPParams
from repro.util.units import MIB

DIMS = (2, 2, 2)
MESSAGE = 2 * MIB


def main() -> None:
    params = BGPParams()
    for algorithm, mode in [
        ("torus-direct-put", Mode.QUAD),
        ("torus-fifo", Mode.QUAD),
        ("torus-shaddr", Mode.QUAD),
    ]:
        print("=" * 64)
        print(f"{algorithm}  ({MESSAGE // MIB} MiB broadcast on "
              f"{DIMS[0]}x{DIMS[1]}x{DIMS[2]} quad)")
        prediction = predict_torus_bcast(
            params, algorithm, DIMS, MESSAGE, ppn=mode.processes_per_node
        )
        print("analytic bounds:")
        print(prediction)
        machine = Machine(torus_dims=DIMS, mode=mode, params=params)
        result = run_bcast(machine, algorithm, MESSAGE)
        print(f"measured: {result.bandwidth_mbs:.1f} MB/s "
              f"(ceiling {prediction.value:.1f}, "
              f"{result.bandwidth_mbs / prediction.value:.0%} of it)")
        print(format_report(utilization_report(machine)))
        print()


if __name__ == "__main__":
    main()
