#!/usr/bin/env python3
"""Quickstart: broadcast and allreduce on a simulated BG/P partition.

Builds a small quad-mode machine (2x2x2 torus = 8 nodes = 32 MPI ranks),
runs the paper's proposed collectives with payload verification, and
compares them against the current (baseline) algorithms.

Run:  python examples/quickstart.py
"""

from repro import Communicator, Machine, Mode


def main() -> None:
    machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
    comm = Communicator(machine)
    print(f"machine: {machine}")
    print(f"ranks:   {comm.size}")
    print(f"barrier: {comm.barrier():.2f} us (global interrupt network)\n")

    print("-- MPI_Bcast, 1 MB, proposed vs current (payload verified) --")
    for algorithm in ["torus-shaddr", "torus-fifo", "torus-direct-put"]:
        machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        result = Communicator(machine).bcast(
            nbytes="1M", algorithm=algorithm, verify=True
        )
        print(f"  {result}")

    print("\n-- MPI_Allreduce, 128K doubles, proposed vs current --")
    for algorithm in ["allreduce-torus-shaddr", "allreduce-torus-current"]:
        machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        result = Communicator(machine).allreduce(
            count=128 * 1024, algorithm=algorithm, verify=True
        )
        print(f"  {result}")

    print("\n-- automatic protocol selection by message size --")
    for nbytes in ["256", "64K", "4M"]:
        machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        result = Communicator(machine).bcast(nbytes=nbytes)
        print(f"  {nbytes:>4}: {result.algorithm:13s} "
              f"{result.elapsed_us:9.2f} us {result.bandwidth_mbs:8.1f} MB/s")


if __name__ == "__main__":
    main()
