#!/usr/bin/env python3
"""Real-thread demo of the concurrent Bcast FIFO (paper section IV-B).

One producer thread plays the "master process": it receives pipeline chunks
of a message (here: generated locally) and enqueues them into the Bcast
FIFO, multiplexing several "connections" (the torus colors) with per-slot
metadata.  Three consumer threads — the peer processes — each reassemble
the complete message from the shared FIFO.  Everything is genuine
``threading`` + ``numpy``; nothing is simulated.

Run:  python examples/fifo_threads.py
"""

import threading
import time

import numpy as np

from repro import BcastFifo, CompletionCounter

MESSAGE_BYTES = 512 * 1024
SLOT_BYTES = 8 * 1024
SLOTS = 16
CONSUMERS = 3
CONNECTIONS = 6


def main() -> None:
    rng = np.random.default_rng(7)
    message = rng.integers(0, 256, size=MESSAGE_BYTES, dtype=np.uint8)
    fifo = BcastFifo(slots=SLOTS, slot_bytes=SLOT_BYTES, consumers=CONSUMERS)
    done = CompletionCounter(CONSUMERS)
    results = [np.zeros(MESSAGE_BYTES, dtype=np.uint8)
               for _ in range(CONSUMERS)]

    # Partition the message across "connections" (colors), then packetize
    # each partition into FIFO slots, exactly like the Torus+FIFO scheme.
    pieces = []
    part = MESSAGE_BYTES // CONNECTIONS
    for conn in range(CONNECTIONS):
        start = conn * part
        end = MESSAGE_BYTES if conn == CONNECTIONS - 1 else start + part
        for off in range(start, end, SLOT_BYTES):
            hi = min(off + SLOT_BYTES, end)
            pieces.append((conn, off, hi))
    total_pieces = len(pieces)

    def producer() -> None:
        for conn, off, hi in pieces:
            fifo.enqueue(message[off:hi], meta=(conn, off, hi - off),
                         timeout=30)

    def consumer(idx: int) -> None:
        cursor = fifo.consumer()
        for _ in range(total_pieces):
            payload, (conn, off, size) = cursor.read(timeout=30)
            results[idx][off:off + size] = np.frombuffer(
                payload, dtype=np.uint8
            )
        done.signal()

    t0 = time.perf_counter()
    threads = [threading.Thread(target=producer)] + [
        threading.Thread(target=consumer, args=(i,))
        for i in range(CONSUMERS)
    ]
    for t in threads:
        t.start()
    done.wait(timeout=60)
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    for i in range(CONSUMERS):
        assert np.array_equal(results[i], message), f"consumer {i} mismatch"
    moved = MESSAGE_BYTES * (1 + CONSUMERS)
    print(f"broadcast {MESSAGE_BYTES} B through a {SLOTS}x{SLOT_BYTES} B "
          f"Bcast FIFO to {CONSUMERS} consumers over {CONNECTIONS} "
          f"multiplexed connections")
    print(f"pieces: {total_pieces}, wall time {elapsed * 1e3:.1f} ms, "
          f"aggregate staging traffic {moved / 1e6:.1f} MB "
          f"({moved / elapsed / 1e6:.0f} MB/s through the FIFO)")
    print("every consumer reassembled the message bit-exactly")


if __name__ == "__main__":
    main()
