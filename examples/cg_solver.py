#!/usr/bin/env python3
"""Domain example: communication time of a conjugate-gradient solver.

The paper's motivation is that collective performance limits real scientific
applications.  A distributed CG iteration performs, per step:

* two global dot products      -> 2 x MPI_Allreduce(1 double each, latency!)
* a preconditioner coefficient
  broadcast                    -> 1 x MPI_Bcast(small)
* a residual-vector rebroadcast
  every ``restart`` steps      -> MPI_Bcast(n/P doubles) from the root

This script models the *communication* time of a CG solve on a simulated
BG/P partition under (a) the current DMA-based collectives and (b) the
paper's shared-address collectives, and reports the end-to-end difference —
turning Figures 6-10 into an application-level number.

Run:  python examples/cg_solver.py
"""

from repro import Communicator, Machine, Mode
from repro.util.units import format_time_us


def measure(algorithms: dict, label: str, dims=(2, 2, 2),
            unknowns: int = 4_000_000, steps: int = 50,
            restart: int = 10) -> float:
    """Total communication microseconds for ``steps`` CG iterations."""
    machine = Machine(torus_dims=dims, mode=Mode.QUAD)
    comm = Communicator(machine)
    block_doubles = max(1, unknowns // comm.size)

    # Measure each primitive once (iters=2 to amortize first-use mapping).
    dot = comm.allreduce(
        count=1, algorithm=algorithms["allreduce_small"], iters=2
    ).elapsed_us
    coeff = comm.bcast(
        nbytes=8, algorithm=algorithms["bcast_small"], iters=2
    ).elapsed_us
    refresh = comm.bcast(
        nbytes=block_doubles * 8, algorithm=algorithms["bcast_large"], iters=2
    ).elapsed_us

    per_step = 2 * dot + coeff
    total = steps * per_step + (steps // restart) * refresh
    print(f"{label}:")
    print(f"  dot-product allreduce : {dot:9.2f} us  (x{2 * steps})")
    print(f"  coefficient bcast     : {coeff:9.2f} us  (x{steps})")
    print(f"  residual refresh bcast: {refresh:9.2f} us  "
          f"(x{steps // restart}, {block_doubles * 8} B)")
    print(f"  TOTAL communication   : {format_time_us(total)}\n")
    return total


def main() -> None:
    print(__doc__)
    current = measure(
        {
            "allreduce_small": "allreduce-tree",
            "bcast_small": "tree-dma-fifo",
            "bcast_large": "torus-direct-put",
        },
        "CURRENT collectives (DMA intra-node)",
    )
    proposed = measure(
        {
            "allreduce_small": "allreduce-tree",
            "bcast_small": "tree-shmem",
            "bcast_large": "torus-shaddr",
        },
        "PROPOSED collectives (shared address/memory intra-node)",
    )
    print(f"communication speedup for the whole solve: "
          f"{current / proposed:.2f}x")


if __name__ == "__main__":
    main()
