#!/usr/bin/env python3
"""Protocol crossover: which network/algorithm wins at which message size.

Sweeps MPI_Bcast across message sizes on a quad-mode partition and prints
the measured bandwidth of the collective-network scheme versus the torus
scheme, plus the stack's automatic choice — showing the crossover the BG/P
software exploits ("the Torus network is superior for large message
collectives ... the Collective network is optimal for short to medium
messages", section V).

Run:  python examples/protocol_crossover.py
"""

from repro import Communicator, Machine, Mode
from repro.util.units import format_bytes, parse_size


def main() -> None:
    sizes = ["1K", "8K", "32K", "128K", "512K", "1M", "4M"]
    print(f"{'size':>6} {'tree-shaddr':>14} {'torus-shaddr':>14} "
          f"{'winner':>14} {'auto picks':>14}")
    for size_text in sizes:
        nbytes = parse_size(size_text)
        row = {}
        for algorithm in ["tree-shaddr", "torus-shaddr"]:
            machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
            result = Communicator(machine).bcast(
                nbytes=nbytes, algorithm=algorithm, iters=2
            )
            row[algorithm] = result
        machine = Machine(torus_dims=(2, 2, 2), mode=Mode.QUAD)
        auto = Communicator(machine).bcast(nbytes=nbytes, iters=2)
        winner = max(row, key=lambda a: row[a].bandwidth_mbs)
        print(
            f"{format_bytes(nbytes):>6} "
            f"{row['tree-shaddr'].bandwidth_mbs:11.1f} MB/s "
            f"{row['torus-shaddr'].bandwidth_mbs:11.1f} MB/s "
            f"{winner:>14} {auto.algorithm:>14}"
        )
    print("\n(the stack's size thresholds mirror the BG/P policy: latency-")
    print(" optimized tree for short, core-specialized tree for medium,")
    print(" six-color torus for large messages)")


if __name__ == "__main__":
    main()
